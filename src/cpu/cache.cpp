#include "cpu/cache.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace vegeta::cpu {

namespace {

bool
isPowerOfTwo(u32 value)
{
    return value > 0 && (value & (value - 1)) == 0;
}

u32
log2u(u32 value)
{
    u32 shift = 0;
    while ((u32{1} << shift) < value)
        ++shift;
    return shift;
}

} // namespace

CacheModel::CacheModel(CacheConfig config) : config_(config)
{
    VEGETA_ASSERT(config_.l1Ways > 0, "degenerate cache configuration");
    VEGETA_ASSERT(isPowerOfTwo(config_.lineBytes) &&
                      isPowerOfTwo(config_.l1Sets),
                  "lineBytes and l1Sets must be powers of two");
    line_shift_ = log2u(config_.lineBytes);
    set_mask_ = config_.l1Sets - 1;
    tags_.assign(std::size_t{config_.l1Sets} * config_.l1Ways,
                 kInvalidTag);
}

CacheModel::RangeAccess
CacheModel::accessRange(Addr addr, u32 bytes)
{
    VEGETA_ASSERT(bytes > 0, "zero-length access");
    RangeAccess access;
    const u64 first = addr / config_.lineBytes;
    const u64 last = (addr + bytes - 1) / config_.lineBytes;
    for (u64 line = first; line <= last; ++line) {
        access.maxLatency = std::max(
            access.maxLatency, accessLine(line * config_.lineBytes));
        ++access.lines;
    }
    return access;
}

void
CacheModel::reset()
{
    std::fill(tags_.begin(), tags_.end(), kInvalidTag);
    hits_ = 0;
    misses_ = 0;
}

LaneCacheModel::LaneCacheModel(const std::vector<CacheConfig> &configs)
    : configs_(configs)
{
    VEGETA_ASSERT(!configs_.empty(),
                  "lane cache needs at least 1 lane");
    const std::size_t lanes = configs_.size();
    line_shift_.reserve(lanes);
    ways_.reserve(lanes);
    set_mask_.reserve(lanes);
    l1_latency_.reserve(lanes);
    l2_latency_.reserve(lanes);
    bank_base_.reserve(lanes);
    bank_size_.reserve(lanes);
    head_base_.reserve(lanes);
    std::size_t total = 0;
    std::size_t total_sets = 0;
    for (const CacheConfig &config : configs_) {
        VEGETA_ASSERT(config.l1Ways > 0,
                      "degenerate cache configuration");
        VEGETA_ASSERT(isPowerOfTwo(config.lineBytes) &&
                          isPowerOfTwo(config.l1Sets),
                      "lineBytes and l1Sets must be powers of two");
        line_shift_.push_back(log2u(config.lineBytes));
        ways_.push_back(config.l1Ways);
        set_mask_.push_back(config.l1Sets - 1);
        l1_latency_.push_back(config.l1Latency);
        l2_latency_.push_back(config.l2Latency);
        bank_base_.push_back(total);
        bank_size_.push_back(std::size_t{config.l1Sets} *
                             config.l1Ways);
        total += bank_size_.back();
        head_base_.push_back(total_sets);
        total_sets += config.l1Sets;
    }
    tags_.assign(total, kInvalidTag);
    heads_.assign(total_sets, 0);
    hits_.assign(lanes, 0);
    misses_.assign(lanes, 0);
}

namespace {

/**
 * probeSpan's hot loop for a compile-time way count: the scan fully
 * unrolls and the geometry lives in registers across the whole span.
 * Mirrors LaneCacheModel::accessLine's circular-head recency update
 * exactly.  Returns the number of hits.
 */
template <u32 Ways>
u64
probeSpanWays(u64 *bank, u32 *heads, u64 set_mask, u32 line_shift,
              Cycles l1, Cycles l2, Addr addr, u64 stride, u64 count,
              Cycles *out)
{
    u64 hits = 0;
    for (u64 i = 0; i < count; ++i) {
        const u64 line = (addr + i * stride) >> line_shift;
        const u64 set_idx = line & set_mask;
        u64 *set = bank + set_idx * Ways;
        u32 *head = heads + set_idx;
        u32 hit_way = Ways;
        for (u32 w = 0; w < Ways; ++w)
            if (set[w] == line)
                hit_way = w;
        if (hit_way == Ways) {
            // Miss: step the head back onto the LRU tail and
            // overwrite it -- one store instead of a ways-1 rotate.
            const u32 h = *head == 0 ? Ways - 1 : *head - 1;
            set[h] = line;
            *head = h;
            out[i] = l2;
        } else {
            // Hit at logical depth d: rotate the logical prefix.
            const u32 h = *head;
            u32 d = hit_way >= h ? hit_way - h : hit_way + Ways - h;
            for (; d > 0; --d) {
                const u32 to = h + d >= Ways ? h + d - Ways : h + d;
                const u32 from = to == 0 ? Ways - 1 : to - 1;
                set[to] = set[from];
            }
            set[h] = line;
            out[i] = l1;
            ++hits;
        }
    }
    return hits;
}

} // namespace

void
LaneCacheModel::probeSpan(u32 lane, Addr addr, u64 stride, u64 count,
                          Cycles *out)
{
    u64 *bank = tags_.data() + bank_base_[lane];
    u32 *heads = heads_.data() + head_base_[lane];
    const u64 set_mask = set_mask_[lane];
    const u32 line_shift = line_shift_[lane];
    const Cycles l1 = l1_latency_[lane];
    const Cycles l2 = l2_latency_[lane];
    u64 hits = 0;
    switch (ways_[lane]) {
      case 4:
        hits = probeSpanWays<4>(bank, heads, set_mask, line_shift, l1,
                                l2, addr, stride, count, out);
        break;
      case 8:
        hits = probeSpanWays<8>(bank, heads, set_mask, line_shift, l1,
                                l2, addr, stride, count, out);
        break;
      case 12:
        hits = probeSpanWays<12>(bank, heads, set_mask, line_shift, l1,
                                 l2, addr, stride, count, out);
        break;
      case 16:
        hits = probeSpanWays<16>(bank, heads, set_mask, line_shift, l1,
                                 l2, addr, stride, count, out);
        break;
      default:
        // Uncommon associativity: the per-call path, minus counters.
        for (u64 i = 0; i < count; ++i)
            out[i] = accessLine(lane, addr + i * stride);
        return;
    }
    hits_[lane] += hits;
    misses_[lane] += count - hits;
}

void
LaneCacheModel::resetLane(u32 lane)
{
    std::fill_n(tags_.begin() +
                    static_cast<std::ptrdiff_t>(bank_base_[lane]),
                bank_size_[lane], kInvalidTag);
    std::fill_n(heads_.begin() +
                    static_cast<std::ptrdiff_t>(head_base_[lane]),
                configs_[lane].l1Sets, u32{0});
    hits_[lane] = 0;
    misses_[lane] = 0;
}

void
LaneCacheModel::reset()
{
    for (u32 lane = 0; lane < configs_.size(); ++lane)
        resetLane(lane);
}

} // namespace vegeta::cpu
