#include "cpu/cache.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace vegeta::cpu {

namespace {

bool
isPowerOfTwo(u32 value)
{
    return value > 0 && (value & (value - 1)) == 0;
}

u32
log2u(u32 value)
{
    u32 shift = 0;
    while ((u32{1} << shift) < value)
        ++shift;
    return shift;
}

} // namespace

CacheModel::CacheModel(CacheConfig config) : config_(config)
{
    VEGETA_ASSERT(config_.l1Ways > 0, "degenerate cache configuration");
    VEGETA_ASSERT(isPowerOfTwo(config_.lineBytes) &&
                      isPowerOfTwo(config_.l1Sets),
                  "lineBytes and l1Sets must be powers of two");
    line_shift_ = log2u(config_.lineBytes);
    set_mask_ = config_.l1Sets - 1;
    tags_.assign(std::size_t{config_.l1Sets} * config_.l1Ways,
                 kInvalidTag);
}

CacheModel::RangeAccess
CacheModel::accessRange(Addr addr, u32 bytes)
{
    VEGETA_ASSERT(bytes > 0, "zero-length access");
    RangeAccess access;
    const u64 first = addr / config_.lineBytes;
    const u64 last = (addr + bytes - 1) / config_.lineBytes;
    for (u64 line = first; line <= last; ++line) {
        access.maxLatency = std::max(
            access.maxLatency, accessLine(line * config_.lineBytes));
        ++access.lines;
    }
    return access;
}

void
CacheModel::reset()
{
    std::fill(tags_.begin(), tags_.end(), kInvalidTag);
    hits_ = 0;
    misses_ = 0;
}

} // namespace vegeta::cpu
