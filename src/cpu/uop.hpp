/**
 * @file
 * Trace micro-operations consumed by the cycle-level CPU model.
 *
 * Kernels run on the functional emulator and record one TraceOp per
 * executed instruction -- the same role the Pin-generated traces play
 * for MacSim in the paper (Section VI-A).  Scalar loop/address ops are
 * recorded without explicit register dependencies (they are
 * off-critical-path bookkeeping on the 4-wide core); tile and vector
 * ops carry their full architectural operand information.
 */

#ifndef VEGETA_CPU_UOP_HPP
#define VEGETA_CPU_UOP_HPP

#include <vector>

#include "isa/instructions.hpp"

namespace vegeta::cpu {

enum class UopKind : u8
{
    Alu,         ///< scalar ALU / address computation
    Branch,      ///< (predicted) branch
    Load,        ///< scalar/vector 64 B load
    Store,       ///< scalar/vector 64 B store
    VectorFma,   ///< vector FMA (AVX-512-BF16-style, Figure 4 study)
    TileLoad,    ///< TILE_LOAD_T/U/V/M (split into cache-line accesses)
    TileStore,   ///< TILE_STORE_T
    TileCompute, ///< TILE_GEMM / TILE_SPMM_*
};

const char *uopKindName(UopKind kind);

/** One trace entry. */
struct TraceOp
{
    UopKind kind = UopKind::Alu;
    isa::Instruction tile; ///< valid for Tile* kinds
    Addr addr = 0;         ///< valid for Load/Store
    u32 bytes = 0;         ///< valid for Load/Store
    /**
     * Accumulator dependency chain for VectorFma (0 = independent).
     * Consecutive FMAs on the same chain serialize at full FMA
     * latency, modeling a single accumulator register per output
     * strip in the vector kernel.
     */
    u32 chain = 0;

    static TraceOp
    alu()
    {
        return TraceOp{UopKind::Alu, {}, 0, 0, 0};
    }

    static TraceOp
    branch()
    {
        return TraceOp{UopKind::Branch, {}, 0, 0, 0};
    }

    static TraceOp
    load(Addr addr, u32 bytes)
    {
        return TraceOp{UopKind::Load, {}, addr, bytes, 0};
    }

    static TraceOp
    store(Addr addr, u32 bytes)
    {
        return TraceOp{UopKind::Store, {}, addr, bytes, 0};
    }

    static TraceOp
    vectorFma(u32 chain = 0)
    {
        return TraceOp{UopKind::VectorFma, {}, 0, 0, chain};
    }

    static TraceOp
    fromTileInstruction(const isa::Instruction &instr)
    {
        TraceOp op;
        if (isa::isTileCompute(instr.op))
            op.kind = UopKind::TileCompute;
        else if (isa::isTileLoad(instr.op))
            op.kind = UopKind::TileLoad;
        else
            op.kind = UopKind::TileStore;
        op.tile = instr;
        op.addr = instr.addr;
        return op;
    }
};

using Trace = std::vector<TraceOp>;

/** Count ops of one kind. */
u64 countKind(const Trace &trace, UopKind kind);

} // namespace vegeta::cpu

#endif // VEGETA_CPU_UOP_HPP
