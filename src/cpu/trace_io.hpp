/**
 * @file
 * Trace serialization.
 *
 * The paper's flow generates traces with a Pintool and replays them in
 * MacSim; this module provides the equivalent on-disk format so traces
 * can be generated once and replayed across engine configurations (or
 * inspected offline).
 *
 * Binary format (little-endian):
 *   magic   "VGTR"             4 B
 *   version u32                4 B
 *   count   u64                8 B
 *   per op:
 *     kind  u8
 *     chain u32
 *     addr  u64
 *     bytes u32
 *     tile  EncodedInstruction (2 x u64)
 */

#ifndef VEGETA_CPU_TRACE_IO_HPP
#define VEGETA_CPU_TRACE_IO_HPP

#include <iosfwd>
#include <optional>
#include <string>

#include "cpu/trace_sink.hpp"
#include "cpu/uop.hpp"

namespace vegeta::cpu {

inline constexpr u32 kTraceFormatVersion = 1;

/** Serialize a trace to a stream / file. */
void writeTrace(std::ostream &os, const Trace &trace);
bool writeTraceFile(const std::string &path, const Trace &trace);

/**
 * Incremental trace deserializer: validates the header on
 * construction, then hands out one op per next() call, so an on-disk
 * trace can be replayed (fed into a TraceSink) without ever holding
 * more than one op in memory.
 *
 * The on-disk op count is untrusted: on seekable streams it is
 * checked against the bytes actually remaining up front; otherwise
 * truncation surfaces as error() at the failing op.
 */
class TraceReader
{
  public:
    explicit TraceReader(std::istream &is);

    /** Header parsed and plausible (magic, version, count). */
    bool valid() const { return header_ok_; }

    /** Op count promised by the header (0 if the header was bad). */
    u64 count() const { return count_; }

    /** Ops handed out so far. */
    u64 read() const { return read_; }

    /**
     * The next op, or nullopt when the stream is exhausted.  After a
     * nullopt, error() distinguishes a clean end from truncation or a
     * malformed op.
     */
    std::optional<TraceOp> next();

    /** True once a read failed before count() ops were delivered. */
    bool error() const { return error_; }

    /** How many ops to reserve when materializing (clamped). */
    u64 reserveHint() const { return reserve_hint_; }

  private:
    std::istream &is_;
    u64 count_ = 0;
    u64 read_ = 0;
    u64 reserve_hint_ = 0;
    bool header_ok_ = false;
    bool error_ = false;
};

/**
 * Stream every op of a serialized trace into @p sink; returns the op
 * count on success, nullopt on a bad header, truncation, or a
 * malformed op (the sink may have consumed a prefix by then).
 */
std::optional<u64> streamTrace(std::istream &is, TraceSink &sink);

/**
 * Deserialize; returns nullopt on bad magic/version/truncation or a
 * malformed embedded tile instruction.
 */
std::optional<Trace> readTrace(std::istream &is);
std::optional<Trace> readTraceFile(const std::string &path);

} // namespace vegeta::cpu

#endif // VEGETA_CPU_TRACE_IO_HPP
