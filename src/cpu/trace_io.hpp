/**
 * @file
 * Trace serialization.
 *
 * The paper's flow generates traces with a Pintool and replays them in
 * MacSim; this module provides the equivalent on-disk format so traces
 * can be generated once and replayed across engine configurations (or
 * inspected offline).
 *
 * Binary format (little-endian):
 *   magic   "VGTR"             4 B
 *   version u32                4 B
 *   count   u64                8 B
 *   per op:
 *     kind  u8
 *     chain u32
 *     addr  u64
 *     bytes u32
 *     tile  EncodedInstruction (2 x u64)
 */

#ifndef VEGETA_CPU_TRACE_IO_HPP
#define VEGETA_CPU_TRACE_IO_HPP

#include <iosfwd>
#include <optional>
#include <string>

#include "cpu/uop.hpp"

namespace vegeta::cpu {

inline constexpr u32 kTraceFormatVersion = 1;

/** Serialize a trace to a stream / file. */
void writeTrace(std::ostream &os, const Trace &trace);
bool writeTraceFile(const std::string &path, const Trace &trace);

/**
 * Deserialize; returns nullopt on bad magic/version/truncation or a
 * malformed embedded tile instruction.
 */
std::optional<Trace> readTrace(std::istream &is);
std::optional<Trace> readTraceFile(const std::string &path);

} // namespace vegeta::cpu

#endif // VEGETA_CPU_TRACE_IO_HPP
