#include "cpu/trace_io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hpp"
#include "isa/encoding.hpp"

namespace vegeta::cpu {

namespace {

constexpr char kMagic[4] = {'V', 'G', 'T', 'R'};

template <typename T>
void
writeRaw(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
bool
readRaw(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    return static_cast<bool>(is);
}

} // namespace

void
writeTrace(std::ostream &os, const Trace &trace)
{
    os.write(kMagic, 4);
    writeRaw(os, kTraceFormatVersion);
    writeRaw(os, static_cast<u64>(trace.size()));
    for (const auto &op : trace) {
        writeRaw(os, static_cast<u8>(op.kind));
        writeRaw(os, op.chain);
        writeRaw(os, op.addr);
        writeRaw(os, op.bytes);
        const isa::EncodedInstruction enc = isa::encode(op.tile);
        writeRaw(os, enc.word);
        writeRaw(os, enc.addr);
    }
}

bool
writeTraceFile(const std::string &path, const Trace &trace)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    writeTrace(os, trace);
    return static_cast<bool>(os);
}

TraceReader::TraceReader(std::istream &is) : is_(is)
{
    char magic[4];
    is_.read(magic, 4);
    if (!is_ || std::memcmp(magic, kMagic, 4) != 0)
        return;
    u32 version;
    if (!readRaw(is_, version) || version != kTraceFormatVersion)
        return;
    if (!readRaw(is_, count_)) {
        count_ = 0;
        return;
    }

    // The on-disk count is untrusted: a corrupt or truncated header
    // must not drive a multi-GB reserve before the first element read
    // fails.  On seekable streams the count is validated against the
    // bytes actually remaining; otherwise the reserve hint is clamped
    // and materializing callers grow on demand.
    constexpr u64 kOpDiskBytes =
        sizeof(u8) + sizeof(TraceOp::chain) + sizeof(TraceOp::addr) +
        sizeof(TraceOp::bytes) + sizeof(isa::EncodedInstruction::word) +
        sizeof(isa::EncodedInstruction::addr);
    constexpr u64 kReserveClampOps = u64(1) << 20;
    reserve_hint_ = std::min(count_, kReserveClampOps);
    const auto here = is_.tellg();
    if (here != std::istream::pos_type(-1)) {
        is_.seekg(0, std::ios::end);
        const auto end = is_.tellg();
        // A stream that can tell but not seek-to-end must still be
        // readable below: drop the failed-seek state, skip validation.
        is_.clear();
        is_.seekg(here);
        if (end != std::istream::pos_type(-1) && is_) {
            const u64 remaining =
                end >= here ? static_cast<u64>(end - here) : 0;
            if (count_ > remaining / kOpDiskBytes) {
                count_ = 0;
                return;
            }
            reserve_hint_ = count_;
        }
    }
    header_ok_ = true;
}

std::optional<TraceOp>
TraceReader::next()
{
    if (!header_ok_ || error_ || read_ >= count_)
        return std::nullopt;
    TraceOp op;
    u8 kind;
    isa::EncodedInstruction enc;
    if (!readRaw(is_, kind) || !readRaw(is_, op.chain) ||
        !readRaw(is_, op.addr) || !readRaw(is_, op.bytes) ||
        !readRaw(is_, enc.word) || !readRaw(is_, enc.addr)) {
        error_ = true;
        return std::nullopt;
    }
    if (kind > static_cast<u8>(UopKind::TileCompute)) {
        error_ = true;
        return std::nullopt;
    }
    op.kind = static_cast<UopKind>(kind);
    auto tile = isa::decode(enc);
    if (!tile) {
        error_ = true;
        return std::nullopt;
    }
    op.tile = *tile;
    ++read_;
    return op;
}

std::optional<u64>
streamTrace(std::istream &is, TraceSink &sink)
{
    TraceReader reader(is);
    if (!reader.valid())
        return std::nullopt;
    while (auto op = reader.next())
        sink.emit(*op);
    if (reader.error())
        return std::nullopt;
    return reader.read();
}

std::optional<Trace>
readTrace(std::istream &is)
{
    TraceReader reader(is);
    if (!reader.valid())
        return std::nullopt;
    Trace trace;
    trace.reserve(reader.reserveHint());
    while (auto op = reader.next())
        trace.push_back(*op);
    if (reader.error())
        return std::nullopt;
    return trace;
}

std::optional<Trace>
readTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    return readTrace(is);
}

} // namespace vegeta::cpu
