#include "cpu/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hpp"
#include "isa/encoding.hpp"

namespace vegeta::cpu {

namespace {

constexpr char kMagic[4] = {'V', 'G', 'T', 'R'};

template <typename T>
void
writeRaw(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
bool
readRaw(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    return static_cast<bool>(is);
}

} // namespace

void
writeTrace(std::ostream &os, const Trace &trace)
{
    os.write(kMagic, 4);
    writeRaw(os, kTraceFormatVersion);
    writeRaw(os, static_cast<u64>(trace.size()));
    for (const auto &op : trace) {
        writeRaw(os, static_cast<u8>(op.kind));
        writeRaw(os, op.chain);
        writeRaw(os, op.addr);
        writeRaw(os, op.bytes);
        const isa::EncodedInstruction enc = isa::encode(op.tile);
        writeRaw(os, enc.word);
        writeRaw(os, enc.addr);
    }
}

bool
writeTraceFile(const std::string &path, const Trace &trace)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    writeTrace(os, trace);
    return static_cast<bool>(os);
}

std::optional<Trace>
readTrace(std::istream &is)
{
    char magic[4];
    is.read(magic, 4);
    if (!is || std::memcmp(magic, kMagic, 4) != 0)
        return std::nullopt;
    u32 version;
    if (!readRaw(is, version) || version != kTraceFormatVersion)
        return std::nullopt;
    u64 count;
    if (!readRaw(is, count))
        return std::nullopt;

    Trace trace;
    trace.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        TraceOp op;
        u8 kind;
        isa::EncodedInstruction enc;
        if (!readRaw(is, kind) || !readRaw(is, op.chain) ||
            !readRaw(is, op.addr) || !readRaw(is, op.bytes) ||
            !readRaw(is, enc.word) || !readRaw(is, enc.addr))
            return std::nullopt;
        if (kind > static_cast<u8>(UopKind::TileCompute))
            return std::nullopt;
        op.kind = static_cast<UopKind>(kind);
        auto tile = isa::decode(enc);
        if (!tile)
            return std::nullopt;
        op.tile = *tile;
        trace.push_back(op);
    }
    return trace;
}

std::optional<Trace>
readTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    return readTrace(is);
}

} // namespace vegeta::cpu
