#include "cpu/trace_io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hpp"
#include "isa/encoding.hpp"

namespace vegeta::cpu {

namespace {

constexpr char kMagic[4] = {'V', 'G', 'T', 'R'};

template <typename T>
void
writeRaw(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
bool
readRaw(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    return static_cast<bool>(is);
}

} // namespace

void
writeTrace(std::ostream &os, const Trace &trace)
{
    os.write(kMagic, 4);
    writeRaw(os, kTraceFormatVersion);
    writeRaw(os, static_cast<u64>(trace.size()));
    for (const auto &op : trace) {
        writeRaw(os, static_cast<u8>(op.kind));
        writeRaw(os, op.chain);
        writeRaw(os, op.addr);
        writeRaw(os, op.bytes);
        const isa::EncodedInstruction enc = isa::encode(op.tile);
        writeRaw(os, enc.word);
        writeRaw(os, enc.addr);
    }
}

bool
writeTraceFile(const std::string &path, const Trace &trace)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    writeTrace(os, trace);
    return static_cast<bool>(os);
}

std::optional<Trace>
readTrace(std::istream &is)
{
    char magic[4];
    is.read(magic, 4);
    if (!is || std::memcmp(magic, kMagic, 4) != 0)
        return std::nullopt;
    u32 version;
    if (!readRaw(is, version) || version != kTraceFormatVersion)
        return std::nullopt;
    u64 count;
    if (!readRaw(is, count))
        return std::nullopt;

    // The on-disk count is untrusted: a corrupt or truncated header
    // must not drive a multi-GB reserve before the first element read
    // fails.  On seekable streams the count is validated against the
    // bytes actually remaining; otherwise the reserve is clamped and
    // the vector grows on demand.
    constexpr u64 kOpDiskBytes =
        sizeof(u8) + sizeof(TraceOp::chain) + sizeof(TraceOp::addr) +
        sizeof(TraceOp::bytes) + sizeof(isa::EncodedInstruction::word) +
        sizeof(isa::EncodedInstruction::addr);
    constexpr u64 kReserveClampOps = u64(1) << 20;
    u64 reserve_ops = std::min(count, kReserveClampOps);
    const auto here = is.tellg();
    if (here != std::istream::pos_type(-1)) {
        is.seekg(0, std::ios::end);
        const auto end = is.tellg();
        // A stream that can tell but not seek-to-end must still be
        // readable below: drop the failed-seek state, skip validation.
        is.clear();
        is.seekg(here);
        if (end != std::istream::pos_type(-1) && is) {
            const u64 remaining =
                end >= here ? static_cast<u64>(end - here) : 0;
            if (count > remaining / kOpDiskBytes)
                return std::nullopt;
            reserve_ops = count;
        }
    }

    Trace trace;
    trace.reserve(reserve_ops);
    for (u64 i = 0; i < count; ++i) {
        TraceOp op;
        u8 kind;
        isa::EncodedInstruction enc;
        if (!readRaw(is, kind) || !readRaw(is, op.chain) ||
            !readRaw(is, op.addr) || !readRaw(is, op.bytes) ||
            !readRaw(is, enc.word) || !readRaw(is, enc.addr))
            return std::nullopt;
        if (kind > static_cast<u8>(UopKind::TileCompute))
            return std::nullopt;
        op.kind = static_cast<UopKind>(kind);
        auto tile = isa::decode(enc);
        if (!tile)
            return std::nullopt;
        op.tile = *tile;
        trace.push_back(op);
    }
    return trace;
}

std::optional<Trace>
readTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    return readTrace(is);
}

} // namespace vegeta::cpu
