#include "model/vector_vs_matrix.hpp"

#include "cpu/trace_cpu.hpp"
#include "kernels/gemm_kernels.hpp"
#include "kernels/vector_kernels.hpp"

namespace vegeta::model {

std::vector<VectorMatrixPoint>
figure4Series(const std::vector<u32> &dims)
{
    std::vector<VectorMatrixPoint> out;
    out.reserve(dims.size());

    cpu::CoreConfig core;
    core.engineClockDivider = 1; // engines clocked with the core here

    for (u32 dim : dims) {
        const kernels::GemmDims gemm{dim, dim, dim};

        kernels::KernelOptions matrix_opts;
        matrix_opts.traceOnly = true;
        const kernels::KernelRun matrix_run =
            kernels::runSpmmKernel(gemm, 4, matrix_opts);

        const cpu::Trace vector_trace =
            kernels::generateVectorGemmTrace(gemm);

        cpu::TraceCpu matrix_cpu(core, engine::vegetaD12());
        cpu::TraceCpu vector_cpu(core, engine::vegetaD12());

        VectorMatrixPoint p;
        p.dim = dim;
        p.matrixInstructions = matrix_run.trace.size();
        p.vectorInstructions = vector_trace.size();
        p.matrixCycles = matrix_cpu.run(matrix_run.trace).totalCycles;
        p.vectorCycles = vector_cpu.run(vector_trace).totalCycles;
        out.push_back(p);
    }
    return out;
}

} // namespace vegeta::model
