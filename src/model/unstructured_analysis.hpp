/**
 * @file
 * Unstructured-sparsity granularity study (paper Section VI-E,
 * Figure 15): average speed-up over a dense engine when unstructured
 * sparse layers are executed through N:M hardware at different
 * granularities, plus an area-normalized SIGMA-like unstructured
 * accelerator comparison.
 *
 * For each workload the weight matrix receives Bernoulli unstructured
 * sparsity of the target degree; each granularity then picks covering
 * N values with the real transformation code (sparsity/
 * rowwise_transform), and the speed-up is the ratio of dense to
 * structured work on a compute-bound engine.  The SIGMA-like engine
 * skips every zero (speed-up 1/density) but pays a fixed area factor;
 * the factor is calibrated so its crossover with row-wise N:M lands at
 * ~95% sparsity as the paper reports.
 */

#ifndef VEGETA_MODEL_UNSTRUCTURED_ANALYSIS_HPP
#define VEGETA_MODEL_UNSTRUCTURED_ANALYSIS_HPP

#include <vector>

#include "kernels/workloads.hpp"
#include "sparsity/rowwise_transform.hpp"

namespace vegeta::model {

/** Area factor of the SIGMA-like unstructured engine (Section VI-E). */
inline constexpr double kSigmaAreaFactor = 6.0;

/** One sparsity-degree point of Figure 15 (averaged over workloads). */
struct UnstructuredPoint
{
    double degree = 0.0; ///< fraction of zero weights
    double dense = 1.0;
    double layerWise = 1.0;
    double tileWise = 1.0;
    double pseudoRowWise = 1.0;
    double rowWise = 1.0;
    double sigmaLike = 1.0;
};

/**
 * Figure 15 series.  degrees defaults to 60%..95% in 5% steps; the
 * speed-ups are arithmetic means over the workloads.
 */
std::vector<UnstructuredPoint>
figure15Series(const std::vector<kernels::Workload> &workloads,
               const std::vector<double> &degrees = {},
               u64 seed = 0xf15f15);

} // namespace vegeta::model

#endif // VEGETA_MODEL_UNSTRUCTURED_ANALYSIS_HPP
