/**
 * @file
 * Roofline model of dense/sparse vector/matrix engines
 * (paper Section III-A, Figure 3).
 *
 * Parameters follow the paper: 64 GFLOPS vector peak, 512 GFLOPS
 * matrix peak, 94 GB/s memory bandwidth, evaluated on a convolutional
 * layer across weight densities.  "Effective" throughput counts only
 * useful (non-zero) FLOPs:
 *
 *  - a dense engine executes every MAC, so its effective throughput is
 *    density * min(peak, AI_dense * BW);
 *  - a sparse engine skips zeros, so its time is
 *    max(useful_flops / peak, sparse_bytes / BW).
 *
 * At 100% density all engines of a class coincide; at very low density
 * everything converges to the memory roof.
 */

#ifndef VEGETA_MODEL_ROOFLINE_HPP
#define VEGETA_MODEL_ROOFLINE_HPP

#include <vector>

#include "kernels/workloads.hpp"

namespace vegeta::model {

/** Machine parameters (paper Section III-A values). */
struct RooflineParams
{
    double vectorGflops = 64.0;
    double matrixGflops = 512.0;
    double memoryGBs = 94.0;
    /** Metadata overhead of compressed weights (2 bits per BF16). */
    double sparseMetadataOverhead = 0.125;
};

/** One density point of Figure 3. */
struct RooflinePoint
{
    double density = 1.0; ///< fraction of non-zero weights
    double denseVectorTflops = 0.0;
    double sparseVectorTflops = 0.0;
    double denseMatrixTflops = 0.0;
    double sparseMatrixTflops = 0.0;
};

/** Effective-throughput model for one engine at one density. */
double effectiveTflops(const kernels::ConvDims &layer, double density,
                       double peak_gflops, bool sparse_engine,
                       const RooflineParams &params);

/**
 * Figure 3 series over densities (default 1%..100%) for a
 * convolutional layer (default: a ResNet50 3x3 mid-network layer).
 */
std::vector<RooflinePoint>
figure3Series(const RooflineParams &params = {},
              const kernels::ConvDims &layer = {64, 64, 56, 56, 3, 3},
              const std::vector<double> &densities = {});

} // namespace vegeta::model

#endif // VEGETA_MODEL_ROOFLINE_HPP
