/**
 * @file
 * Dynamic-sparsity register-compaction study (paper Section VII,
 * "Handling dynamic sparsity").
 *
 * SAVE-style vector engines exploit dynamic (input) sparsity by
 * merging sparse vector registers: two registers can share one issue
 * slot if no lane holds a non-zero in both.  The paper argues this is
 * "not practical for a matrix engine due to the high probability of
 * conflicts across different tiles since the number of operands in a
 * vector register is 32 while that of a tile register is 512".
 *
 * This model quantifies that argument: with i.i.d. non-zero
 * probability d per operand, two registers of L lanes merge
 * conflict-free with probability (1 - d^2)^L -- which collapses far
 * faster for L = 512 than for L = 32.  A Monte-Carlo estimator over
 * real random masks cross-checks the closed form (and is what the
 * tests compare against).
 */

#ifndef VEGETA_MODEL_DYNAMIC_SPARSITY_HPP
#define VEGETA_MODEL_DYNAMIC_SPARSITY_HPP

#include <vector>

#include "common/random.hpp"

namespace vegeta::model {

/** Operand lanes per register (Section VII numbers). */
inline constexpr u32 kVectorLanes = 32;
inline constexpr u32 kTileLanes = 512; // 16 x 32 BF16

/** Closed-form P(two L-lane registers merge without conflict). */
double analyticMergeProbability(u32 lanes, double density);

/**
 * Monte-Carlo estimate of the same probability from random masks.
 * Deterministic given the rng state.
 */
double monteCarloMergeProbability(u32 lanes, double density, u32 trials,
                                  Rng &rng);

/**
 * Expected compaction factor from greedily merging a stream of sparse
 * registers pairwise (1.0 = nothing merges, 2.0 = everything pairs).
 * Monte-Carlo over a stream of `registers` masks.
 */
double greedyCompactionFactor(u32 lanes, double density, u32 registers,
                              Rng &rng);

/** One density point of the study. */
struct CompactionPoint
{
    double density = 0.0;
    double vectorMergeProb = 0.0;
    double tileMergeProb = 0.0;
    double vectorCompaction = 1.0;
    double tileCompaction = 1.0;
};

/** Sweep densities (default 1%..50%). */
std::vector<CompactionPoint>
compactionStudy(const std::vector<double> &densities = {},
                u32 registers = 256, u32 trials = 2000,
                u64 seed = 0xd15c0);

} // namespace vegeta::model

#endif // VEGETA_MODEL_DYNAMIC_SPARSITY_HPP
