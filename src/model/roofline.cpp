#include "model/roofline.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace vegeta::model {

namespace {

/** Bytes moved for the layer at a given weight density. */
double
layerBytes(const kernels::ConvDims &layer, double density,
           bool sparse_format, const RooflineParams &params)
{
    const double weight_elems =
        static_cast<double>(layer.k) * layer.c * layer.r * layer.s;
    const double input_bytes =
        2.0 * static_cast<double>(layer.c) * layer.y * layer.x;
    const double output_bytes =
        4.0 * static_cast<double>(layer.k) * layer.y * layer.x;
    double weight_bytes = 2.0 * weight_elems;
    if (sparse_format)
        weight_bytes *= density * (1.0 + params.sparseMetadataOverhead);
    return weight_bytes + input_bytes + output_bytes;
}

} // namespace

double
effectiveTflops(const kernels::ConvDims &layer, double density,
                double peak_gflops, bool sparse_engine,
                const RooflineParams &params)
{
    VEGETA_ASSERT(density > 0.0 && density <= 1.0,
                  "density out of (0,1]: ", density);
    const double total_flops = 2.0 * static_cast<double>(layer.macs());
    const double useful_flops = total_flops * density;

    double seconds;
    if (sparse_engine) {
        const double bytes = layerBytes(layer, density, true, params);
        seconds = std::max(useful_flops / (peak_gflops * 1e9),
                           bytes / (params.memoryGBs * 1e9));
    } else {
        const double bytes = layerBytes(layer, density, false, params);
        seconds = std::max(total_flops / (peak_gflops * 1e9),
                           bytes / (params.memoryGBs * 1e9));
    }
    return useful_flops / seconds / 1e12;
}

std::vector<RooflinePoint>
figure3Series(const RooflineParams &params, const kernels::ConvDims &layer,
              const std::vector<double> &densities)
{
    std::vector<double> xs = densities;
    if (xs.empty())
        for (int pct = 1; pct <= 100; ++pct)
            xs.push_back(pct / 100.0);

    std::vector<RooflinePoint> out;
    out.reserve(xs.size());
    for (double d : xs) {
        RooflinePoint p;
        p.density = d;
        p.denseVectorTflops =
            effectiveTflops(layer, d, params.vectorGflops, false, params);
        p.sparseVectorTflops =
            effectiveTflops(layer, d, params.vectorGflops, true, params);
        p.denseMatrixTflops =
            effectiveTflops(layer, d, params.matrixGflops, false, params);
        p.sparseMatrixTflops =
            effectiveTflops(layer, d, params.matrixGflops, true, params);
        out.push_back(p);
    }
    return out;
}

} // namespace vegeta::model
