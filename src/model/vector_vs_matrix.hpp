/**
 * @file
 * Vector-vs-matrix engine comparison (paper Section III-A, Figure 4):
 * executed-instruction-count ratio and runtime ratio for square GEMMs
 * of dimension 32 / 64 / 128, simulated on the same trace-driven core.
 *
 * The matrix side runs the optimized tiled TILE_GEMM kernel on the
 * RASA-DM engine; the vector side runs the compiler-style AVX-512-BF16
 * kernel.  Both engines are clocked with the core for this motivation
 * study (no 4x engine divider): the comparison isolates instruction
 * granularity, not clock choices.
 */

#ifndef VEGETA_MODEL_VECTOR_VS_MATRIX_HPP
#define VEGETA_MODEL_VECTOR_VS_MATRIX_HPP

#include <vector>

#include "common/types.hpp"

namespace vegeta::model {

struct VectorMatrixPoint
{
    u32 dim = 0;
    u64 vectorInstructions = 0;
    u64 matrixInstructions = 0;
    Cycles vectorCycles = 0;
    Cycles matrixCycles = 0;

    double
    instructionRatio() const
    {
        return static_cast<double>(vectorInstructions) /
               static_cast<double>(matrixInstructions);
    }

    double
    runtimeRatio() const
    {
        return static_cast<double>(vectorCycles) /
               static_cast<double>(matrixCycles);
    }
};

/** Figure 4 series (default dims 32, 64, 128). */
std::vector<VectorMatrixPoint>
figure4Series(const std::vector<u32> &dims = {32, 64, 128});

} // namespace vegeta::model

#endif // VEGETA_MODEL_VECTOR_VS_MATRIX_HPP
