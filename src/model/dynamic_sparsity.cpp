#include "model/dynamic_sparsity.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace vegeta::model {

double
analyticMergeProbability(u32 lanes, double density)
{
    VEGETA_ASSERT(density >= 0.0 && density <= 1.0,
                  "density out of range: ", density);
    return std::pow(1.0 - density * density,
                    static_cast<double>(lanes));
}

namespace {

/** Random lane-occupancy mask as packed 64-bit words. */
std::vector<u64>
randomMask(u32 lanes, double density, Rng &rng)
{
    std::vector<u64> words((lanes + 63) / 64, 0);
    for (u32 l = 0; l < lanes; ++l)
        if (rng.nextBool(density))
            words[l / 64] |= 1ull << (l % 64);
    return words;
}

bool
conflictFree(const std::vector<u64> &a, const std::vector<u64> &b)
{
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i] & b[i])
            return false;
    return true;
}

void
mergeInto(std::vector<u64> &a, const std::vector<u64> &b)
{
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] |= b[i];
}

} // namespace

double
monteCarloMergeProbability(u32 lanes, double density, u32 trials,
                           Rng &rng)
{
    VEGETA_ASSERT(trials > 0, "need at least one trial");
    u32 successes = 0;
    for (u32 t = 0; t < trials; ++t) {
        const auto a = randomMask(lanes, density, rng);
        const auto b = randomMask(lanes, density, rng);
        if (conflictFree(a, b))
            ++successes;
    }
    return static_cast<double>(successes) / trials;
}

double
greedyCompactionFactor(u32 lanes, double density, u32 registers,
                       Rng &rng)
{
    VEGETA_ASSERT(registers > 0, "need at least one register");
    // Greedy first-fit: each incoming register merges into the first
    // open slot it does not conflict with (a SAVE-like issue-slot
    // combiner with a small window).
    constexpr u32 kWindow = 4;
    std::vector<std::vector<u64>> open;
    u32 slots = 0;
    for (u32 r = 0; r < registers; ++r) {
        const auto mask = randomMask(lanes, density, rng);
        bool merged = false;
        for (auto &slot : open) {
            if (conflictFree(slot, mask)) {
                mergeInto(slot, mask);
                merged = true;
                break;
            }
        }
        if (!merged) {
            ++slots;
            open.push_back(mask);
            if (open.size() > kWindow)
                open.erase(open.begin());
        }
    }
    return static_cast<double>(registers) / slots;
}

std::vector<CompactionPoint>
compactionStudy(const std::vector<double> &densities, u32 registers,
                u32 trials, u64 seed)
{
    std::vector<double> xs = densities;
    if (xs.empty())
        xs = {0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50};

    std::vector<CompactionPoint> out;
    out.reserve(xs.size());
    for (double d : xs) {
        Rng rng(seed + static_cast<u64>(d * 10000));
        CompactionPoint p;
        p.density = d;
        p.vectorMergeProb = analyticMergeProbability(kVectorLanes, d);
        p.tileMergeProb = analyticMergeProbability(kTileLanes, d);
        p.vectorCompaction =
            greedyCompactionFactor(kVectorLanes, d, registers, rng);
        p.tileCompaction =
            greedyCompactionFactor(kTileLanes, d, registers, rng);
        (void)trials;
        out.push_back(p);
    }
    return out;
}

} // namespace vegeta::model
