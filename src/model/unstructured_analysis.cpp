#include "model/unstructured_analysis.hpp"

#include "common/logging.hpp"
#include "sparsity/pruning.hpp"

namespace vegeta::model {

namespace {

/**
 * Cap weight-matrix size for the statistical study: speed-ups depend
 * only on block-occupancy statistics, which converge quickly, so big
 * layers are sampled through a dimension-preserving crop.
 */
constexpr u32 kMaxRows = 256;
constexpr u32 kMaxCols = 2048;

} // namespace

std::vector<UnstructuredPoint>
figure15Series(const std::vector<kernels::Workload> &workloads,
               const std::vector<double> &degrees, u64 seed)
{
    VEGETA_ASSERT(!workloads.empty(), "no workloads given");
    std::vector<double> xs = degrees;
    if (xs.empty())
        for (int pct = 60; pct <= 95; pct += 5)
            xs.push_back(pct / 100.0);

    std::vector<UnstructuredPoint> out;
    out.reserve(xs.size());

    for (double degree : xs) {
        UnstructuredPoint point;
        point.degree = degree;
        double sum_layer = 0, sum_tile = 0, sum_pseudo = 0, sum_row = 0;

        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const auto &gemm = workloads[w].gemm;
            const u32 rows = std::min(gemm.m, kMaxRows);
            const u32 cols =
                std::min((gemm.k + 63) / 64 * 64, kMaxCols);

            Rng rng(seed + w * 1000 +
                    static_cast<u64>(degree * 100.0));
            MatrixBF16 a = randomMatrixBF16(rows, cols, rng);
            a = maskUnstructuredBernoulli(a, degree, rng);

            sum_layer += granularitySpeedup(
                a, SparsityGranularity::LayerWise);
            sum_tile += granularitySpeedup(
                a, SparsityGranularity::TileWise);
            sum_pseudo += granularitySpeedup(
                a, SparsityGranularity::PseudoRowWise);
            sum_row += granularitySpeedup(
                a, SparsityGranularity::RowWise);
        }

        const double n = static_cast<double>(workloads.size());
        point.dense = 1.0;
        point.layerWise = sum_layer / n;
        point.tileWise = sum_tile / n;
        point.pseudoRowWise = sum_pseudo / n;
        point.rowWise = sum_row / n;
        // Ideal unstructured skipping, normalized by the area cost of
        // the flexible interconnect / sparse controller.
        point.sigmaLike = (1.0 / (1.0 - degree)) / kSigmaAreaFactor;
        out.push_back(point);
    }
    return out;
}

} // namespace vegeta::model
