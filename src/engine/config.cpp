#include "engine/config.hpp"

#include <sstream>

#include "common/logging.hpp"
#include "sparsity/nm_pattern.hpp"

namespace vegeta::engine {

u32
EngineConfig::reductionDepth() const
{
    u32 depth = 0;
    u32 b = beta;
    while (b > 1) {
        b >>= 1;
        ++depth;
    }
    return depth;
}

Cycles
EngineConfig::drainLatency() const
{
    const Cycles reduction_min = reductionDepth() + 1;
    const Cycles traversal = nCols();
    return std::max<Cycles>(traversal, reduction_min);
}

u32
EngineConfig::effectiveN(u32 requested_n) const
{
    VEGETA_ASSERT(requested_n >= 1 && requested_n <= kBlockSize,
                  "requested N out of range: ", requested_n);
    return std::max(requested_n, minSupportedN);
}

bool
EngineConfig::supportsOpcode(isa::Opcode op) const
{
    switch (op) {
      case isa::Opcode::TileGemm:
        return true;
      case isa::Opcode::TileSpmmU:
        return sparse && minSupportedN <= 2;
      case isa::Opcode::TileSpmmV:
        return sparse && minSupportedN <= 1;
      case isa::Opcode::TileSpmmR:
        // Row-wise needs the full flexible-N:M SPE datapath.
        return sparse && minSupportedN <= 1;
      default:
        return false;
    }
}

std::string
EngineConfig::toString() const
{
    std::ostringstream os;
    os << name << " (" << nRows() << "x" << nCols() << " PEs, alpha="
       << alpha << ", beta=" << beta << ", "
       << (sparse ? "sparse" : "dense") << ")";
    return os.str();
}

namespace {

EngineConfig
make(const std::string &name, bool sparse, u32 alpha, u32 beta,
     u32 min_supported_n, const std::string &label)
{
    EngineConfig cfg;
    cfg.name = name;
    cfg.sparse = sparse;
    cfg.alpha = alpha;
    cfg.beta = beta;
    cfg.minSupportedN = min_supported_n;
    cfg.priorWorkLabel = label;
    VEGETA_ASSERT(cfg.nRows() * cfg.nCols() * cfg.macsPerPe() == kTotalMacs,
                  "inconsistent geometry for ", name);
    return cfg;
}

} // namespace

EngineConfig
vegetaD11()
{
    return make("VEGETA-D-1-1", false, 1, 1, 4,
                "Conventional SA, RASA-SM");
}

EngineConfig
vegetaD12()
{
    return make("VEGETA-D-1-2", false, 1, 2, 4, "RASA-DM");
}

EngineConfig
vegetaD161()
{
    return make("VEGETA-D-16-1", false, 16, 1, 4,
                "Intel TMUL-inspired unit");
}

EngineConfig
vegetaS12()
{
    return make("VEGETA-S-1-2", true, 1, 2, 1, "New design");
}

EngineConfig
vegetaS22()
{
    return make("VEGETA-S-2-2", true, 2, 2, 1, "New design");
}

EngineConfig
vegetaS42()
{
    return make("VEGETA-S-4-2", true, 4, 2, 1, "New design");
}

EngineConfig
vegetaS82()
{
    return make("VEGETA-S-8-2", true, 8, 2, 1, "New design");
}

EngineConfig
vegetaS162()
{
    return make("VEGETA-S-16-2", true, 16, 2, 1, "New design");
}

EngineConfig
stcLike()
{
    return make("STC-like", true, 1, 2, 2, "NVIDIA STC config");
}

std::vector<EngineConfig>
allTableIIIConfigs()
{
    return {vegetaD11(), vegetaD12(), vegetaD161(), vegetaS12(),
            vegetaS22(), vegetaS42(), vegetaS82(), vegetaS162()};
}

std::vector<EngineConfig>
allEvaluatedConfigs()
{
    auto configs = allTableIIIConfigs();
    configs.insert(configs.begin() + 3, stcLike());
    return configs;
}

std::optional<EngineConfig>
configByName(const std::string &name)
{
    for (const auto &cfg : allEvaluatedConfigs())
        if (cfg.name == name)
            return cfg;
    return std::nullopt;
}

} // namespace vegeta::engine
