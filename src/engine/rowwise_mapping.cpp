#include "engine/rowwise_mapping.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"

namespace vegeta::engine {

RowWiseMapping
analyzeRowWiseMapping(const std::vector<u32> &row_n)
{
    RowWiseMapping map;
    map.rows = static_cast<u32>(row_n.size());

    u32 n44 = 0, n24 = 0, n14 = 0;
    for (u32 n : row_n) {
        switch (n) {
          case 4:
            ++n44;
            break;
          case 2:
            ++n24;
            break;
          case 1:
            ++n14;
            break;
          default:
            VEGETA_PANIC("illegal row N=", n);
        }
    }
    map.sumN = 4 * n44 + 2 * n24 + n14;
    map.engineCols = n44 + n24 / 2.0 + n14 / 4.0;
    map.fullyUtilized = (map.sumN == kRowWiseNBudget);

    // Without reordering, equal-N rows must appear in complete runs:
    // 2:4 rows in pairs and 1:4 rows in quads, each starting at a
    // group boundary.
    map.groupsAligned = true;
    u32 r = 0;
    while (r < row_n.size()) {
        const u32 n = row_n[r];
        const u32 group = (n == 4) ? 1 : (n == 2 ? 2 : 4);
        if (r + group > row_n.size()) {
            map.groupsAligned = false;
            break;
        }
        for (u32 i = 0; i < group; ++i) {
            if (row_n[r + i] != n) {
                map.groupsAligned = false;
                break;
            }
        }
        if (!map.groupsAligned)
            break;
        r += group;
    }
    return map;
}

std::vector<u32>
dmaReorderPermutation(const std::vector<u32> &row_n)
{
    std::vector<u32> perm(row_n.size());
    std::iota(perm.begin(), perm.end(), 0u);
    std::stable_sort(perm.begin(), perm.end(), [&](u32 x, u32 y) {
        return row_n[x] > row_n[y];
    });
    return perm;
}

} // namespace vegeta::engine
