/**
 * @file
 * Mapping of row-wise N:M sparse tiles onto a VEGETA-S engine
 * (paper Section V-E, Figure 11).
 *
 * A row with 4:4 occupies an SPE-1-4-like column slice (4 SPU-column
 * slots), 2:4 a pair slot, and 1:4 a single slot; with all columns
 * fully utilized, the engine column budget is 16 slots per tile
 * (sum over rows of N_r = 32 maps onto 16 SPU columns x 2 lanes).
 * Rows of equal N must form aligned groups ("pseudo row-wise");
 * a DMA reordering relaxes this to arbitrary row mixes.
 */

#ifndef VEGETA_ENGINE_ROWWISE_MAPPING_HPP
#define VEGETA_ENGINE_ROWWISE_MAPPING_HPP

#include <vector>

#include "engine/config.hpp"

namespace vegeta::engine {

/** Result of mapping one row-wise tile onto the engine. */
struct RowWiseMapping
{
    u32 rows = 0;           ///< HA, the tile's effective row count
    u32 sumN = 0;           ///< total N over rows (32 for a full treg)
    double engineCols = 0;  ///< Ncols = N44 + N24/2 + N14/4
    bool fullyUtilized = false; ///< every MAC column occupied
    bool groupsAligned = false; ///< legal without DMA reordering
};

/**
 * Analyze the mapping of a tile with the given per-row N values
 * (each 1, 2, or 4, in tile row order).
 */
RowWiseMapping analyzeRowWiseMapping(const std::vector<u32> &row_n);

/**
 * Reorder rows (descending N) so equal-N rows group together, the
 * "simple reordering in input/output DMA engines" of Section V-E.
 * Returns the permutation old-index order for the new layout.
 */
std::vector<u32> dmaReorderPermutation(const std::vector<u32> &row_n);

/** HA bounds of a full tile: 8 (all 4:4) to 32 (all 1:4). */
inline constexpr u32 kRowWiseMinRows = 8;
inline constexpr u32 kRowWiseMaxRows = 32;
/** Column budget: sum of N over rows of a full tile. */
inline constexpr u32 kRowWiseNBudget = 32;

} // namespace vegeta::engine

#endif // VEGETA_ENGINE_ROWWISE_MAPPING_HPP
