#include "engine/area_model.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace vegeta::engine {

namespace {

// Component constants, in units of one MAC datapath's area/power.
// Calibrated against the Figure 14 / Section VI-D targets quoted in
// the header comment; see tests/test_area_model.cpp for the asserted
// calibration envelope.
constexpr double kMacArea = 1.0;
constexpr double kPeOverheadArea = 0.12;    // per PE
constexpr double kInputRegArea = 0.018;     // per 16-bit input element
constexpr double kMuxArea = 0.05;           // per-MAC 4:1 mux
constexpr double kMetadataArea = 0.01;      // per-MAC 2-bit entry
constexpr double kReductionAdderArea = 0.30;
constexpr double kInputSelectorArea = 0.15; // per row

constexpr double kMacPower = 1.0;
constexpr double kPePowerOverhead = 0.10;
constexpr double kInputRegPower = 0.033;
constexpr double kSparseExtrasPower = 70.0; // muxes+metadata+selectors

// Frequency: base limited by the MAC critical path; the broadcast to
// alpha PUs lengthens wires (Section V-A), and the sparse mux adds a
// level of logic.
constexpr double kBaseFrequencyGhz = 1.6;
constexpr double kBroadcastSlowdownPerLog2Alpha = 0.15;
constexpr double kSparseMuxSlowdown = 0.07;

} // namespace

PhysicalEstimate
estimatePhysical(const EngineConfig &cfg, u32 block_size)
{
    VEGETA_ASSERT(block_size >= 4 && block_size <= 16 &&
                      (block_size & (block_size - 1)) == 0,
                  "block size must be 4, 8, or 16");
    const double macs = kTotalMacs;
    const double pes = static_cast<double>(cfg.nRows()) * cfg.nCols();
    // Sparse PEs buffer beta whole blocks of M elements each.
    const double inputs_per_pe =
        cfg.sparse ? static_cast<double>(cfg.beta) * block_size
                   : static_cast<double>(cfg.beta);
    const double input_regs = pes * inputs_per_pe;
    const double reduction_adders =
        static_cast<double>(cfg.nCols()) * cfg.alpha * (cfg.beta - 1);

    // M:1 mux cost scales with (M - 1) 2:1 stages; metadata with
    // log2(M) bits per value.  Constants are normalized to M = 4.
    const double mux_scale = (block_size - 1) / 3.0;
    const double metadata_scale =
        std::log2(static_cast<double>(block_size)) / 2.0;

    PhysicalEstimate est;
    est.macArea = macs * kMacArea;
    est.peOverheadArea = pes * kPeOverheadArea;
    est.inputBufferArea = input_regs * kInputRegArea;
    est.sparseExtrasArea = reduction_adders * kReductionAdderArea;
    if (cfg.sparse) {
        est.sparseExtrasArea +=
            macs * (kMuxArea * mux_scale + kMetadataArea * metadata_scale);
        est.sparseExtrasArea += cfg.nRows() * kInputSelectorArea;
    }
    est.areaUnits = est.macArea + est.peOverheadArea +
                    est.inputBufferArea + est.sparseExtrasArea;

    est.powerUnits = macs * kMacPower + pes * kPePowerOverhead +
                     input_regs * kInputRegPower;
    if (cfg.sparse)
        est.powerUnits +=
            kSparseExtrasPower * 0.5 * (mux_scale + metadata_scale);

    double log2_alpha = std::log2(static_cast<double>(cfg.alpha));
    double freq = kBaseFrequencyGhz /
                  (1.0 + kBroadcastSlowdownPerLog2Alpha * log2_alpha);
    if (cfg.sparse) {
        // One extra mux level per doubling of M lengthens the input
        // selection path (kSparseMuxSlowdown is the M = 4 value).
        const double mux_levels =
            std::log2(static_cast<double>(block_size));
        freq *= (1.0 - kSparseMuxSlowdown * mux_levels / 2.0);
    }
    est.maxFrequencyGhz = freq;
    return est;
}

std::vector<NormalizedPhysical>
figure14Series(const std::vector<EngineConfig> &configs)
{
    const PhysicalEstimate baseline = estimatePhysical(vegetaD11());
    VEGETA_ASSERT(baseline.areaUnits > 0 && baseline.powerUnits > 0,
                  "degenerate baseline physical estimate");

    std::vector<NormalizedPhysical> out;
    out.reserve(configs.size());
    for (const auto &cfg : configs) {
        const PhysicalEstimate est = estimatePhysical(cfg);
        NormalizedPhysical row;
        row.name = cfg.name;
        row.normalizedArea = est.areaUnits / baseline.areaUnits;
        row.normalizedPower = est.powerUnits / baseline.powerUnits;
        row.maxFrequencyGhz = est.maxFrequencyGhz;
        out.push_back(row);
    }
    return out;
}

} // namespace vegeta::engine
