/**
 * @file
 * Engine timing model: WL/FF/FS/DR staged execution with
 * multi-instruction pipelining and output forwarding (paper Sections
 * V-C, Figure 10).
 *
 * Stages of one tile GEMM/SPMM instruction on an Nrows x Ncols engine:
 *
 *   WL (weight load)  : Nrows cycles -- stationary weights trickle in.
 *   FF (feed first)   : Tn  cycles  -- inputs + C stream from west/north
 *                       until the top-left PE stops receiving.
 *   FS (feed second)  : Nrows - 1 cycles -- skewed tail of the feed.
 *   DR (drain)        : max(Ncols, log2(beta)+1) cycles -- horizontal
 *                       traversal + bottom reduction.
 *
 * Pipelining: consecutive instructions may overlap but no two can be in
 * the same stage at once.  Dependencies: a consumer of a register fully
 * written at producer completion waits for completion; an *accumulate*
 * (C) dependency can instead use output forwarding: C elements are
 * written back Nrows + log2(beta) cycles after being fed, in feed
 * order, so the dependent instruction's FF may start that many cycles
 * after the producer's FF.
 */

#ifndef VEGETA_ENGINE_PIPELINE_HPP
#define VEGETA_ENGINE_PIPELINE_HPP

#include <array>
#include <vector>

#include "engine/config.hpp"
#include "isa/instructions.hpp"

namespace vegeta::engine {

/** Per-stage latencies of one instruction. */
struct StageLatencies
{
    Cycles wl = 0;
    Cycles ff = 0;
    Cycles fs = 0;
    Cycles dr = 0;

    Cycles total() const { return wl + ff + fs + dr; }
    /** Offset of the FF stage from instruction start. */
    Cycles ffOffset() const { return wl; }
};

/** Timing of one scheduled instruction. */
struct ScheduledOp
{
    isa::Instruction instr;
    Cycles start = 0;    ///< WL begin
    Cycles ffStart = 0;  ///< FF begin (C read begins here)
    Cycles finish = 0;   ///< full C written back
};

/**
 * Incremental engine scheduler.  Feed tile-compute instructions in
 * program order with the cycle their register operands become available
 * (from the CPU model); the scheduler accounts for stage occupancy,
 * in-engine dependencies, and output forwarding, and reports when each
 * instruction starts and completes.
 */
class PipelineModel
{
  public:
    explicit PipelineModel(EngineConfig config,
                           bool output_forwarding = false);

    const EngineConfig &config() const { return config_; }
    bool outputForwarding() const { return output_forwarding_; }

    /** Stage latencies for one instruction on this engine. */
    StageLatencies stages(const isa::Instruction &instr) const;

    /**
     * Schedule one instruction whose non-tile operand constraints allow
     * it to start no earlier than earliest_start.  Returns its timing.
     */
    ScheduledOp issue(const isa::Instruction &instr, Cycles earliest_start);

    /**
     * Cycle at which reg (physical dep id) is available for a
     * *non-accumulate* read (i.e., full write-back done).
     */
    Cycles regReadyFull(u32 reg) const;

    /**
     * Forget the engine's write to reg because a younger non-engine
     * instruction (a tile load) has renamed it; with register renaming
     * the engine's old value can no longer be a RAW source.
     */
    void invalidateReg(u32 reg);

    /** Reset all scheduling state. */
    void reset();

    /** Convenience: schedule a whole instruction stream starting at 0,
     *  with only in-engine dependencies (used by timing studies). */
    std::vector<ScheduledOp>
    scheduleAll(const std::vector<isa::Instruction> &instrs);

    /** Completion time of everything issued so far. */
    Cycles busyUntil() const { return busy_until_; }

  private:
    EngineConfig config_;
    bool output_forwarding_;

    /** Stage exit times of the most recent instruction, per stage. */
    std::array<Cycles, 4> last_stage_exit_{};
    bool any_issued_ = false;

    // Per-register state, directly indexed by physical dependency id
    // (the space is 16 entries: tregs 0-7, mregs 8-15).  Zero is the
    // "never written / invalidated" sentinel in both arrays: a finish
    // time is start + wl + ff + dr >= 3 and an accumulate producer's
    // FF begin is start + wl >= 1, so no real entry can collide with
    // it.  Sentinel instead of paired valid flags keeps the register
    // accounting two flat cycle arrays -- max() against the sentinel
    // is a no-op, so the dependence scan stays branch-light, and a
    // bank of lane-replicated PipelineModels carries half the state.
    /** Per-register full write-back completion time (0 = invalid). */
    std::array<Cycles, isa::kNumDepRegs> reg_full_ready_{};
    /** FF start of the register's last *accumulate* producer (0 =
     *  none: never written, invalidated, or a non-accumulate write). */
    std::array<Cycles, isa::kNumDepRegs> reg_of_producer_ff_{};

    Cycles busy_until_ = 0;
};

/**
 * Back-to-back initiation interval of independent instructions: the
 * largest single stage latency (Figure 10a/b: 16 cycles for both
 * VEGETA-D-1-2 and VEGETA-S-16-2, bounded by total MAC throughput).
 */
Cycles initiationInterval(const EngineConfig &config);

/**
 * Latency in engine cycles of one isolated instruction (fill + feed +
 * drain with no overlap).
 */
Cycles isolatedLatency(const EngineConfig &config,
                       const isa::Instruction &instr);

} // namespace vegeta::engine

#endif // VEGETA_ENGINE_PIPELINE_HPP
