/**
 * @file
 * VEGETA engine design points (paper Table III).
 *
 * An engine is an Nrows x Ncols grid of PEs; each PE holds alpha PUs
 * (broadcast factor) of beta MAC units each (reduction factor).  All
 * designs keep the same total MAC count (512, matching the 32x16
 * baseline inspired by RASA and Intel TMUL):
 *
 *   Nrows = effectualMacsPerOutput / beta          (32 / beta)
 *   Ncols = totalMacs / (Nrows * alpha * beta)
 *
 * Sparse designs (VEGETA-S) add per-MAC M:1 input muxes, metadata
 * buffers, and bottom reduction adders; they fix beta = M/2 = 2 so that
 * input elements need only be fed into a single row (Section V-A).
 */

#ifndef VEGETA_ENGINE_CONFIG_HPP
#define VEGETA_ENGINE_CONFIG_HPP

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/instructions.hpp"

namespace vegeta::engine {

/** Total MAC units in every evaluated engine (32 x 16 baseline). */
inline constexpr u32 kTotalMacs = 512;

/** Effectual MAC operations per output element for tile instructions. */
inline constexpr u32 kMacsPerOutput = 32;

/** Output-tile column count (Tn) of the VEGETA tile instructions. */
inline constexpr u32 kTileN = 16;

/** One engine design point. */
struct EngineConfig
{
    std::string name;     ///< e.g. "VEGETA-S-2-2"
    bool sparse = false;  ///< SPE-based (supports N:M skipping)?
    u32 alpha = 1;        ///< PUs per PE (broadcast factor)
    u32 beta = 1;         ///< MACs per PU (reduction factor)

    /**
     * Smallest supported N for N:4 weight tiles.  1 for full VEGETA-S,
     * 2 for the NVIDIA-STC-like restricted config, 4 for dense engines.
     * A layer with sparser weights executes at this N (extra zeros are
     * not skippable, Section VI-C).
     */
    u32 minSupportedN = 4;

    /** Prior-work label from Table III ("RASA-SM", "Intel TMUL", ...). */
    std::string priorWorkLabel;

    // --- Derived geometry ---------------------------------------------

    u32 nRows() const { return kMacsPerOutput / beta; }
    u32 nCols() const { return kTotalMacs / (nRows() * alpha * beta); }
    u32 macsPerPe() const { return alpha * beta; }

    /**
     * Input elements fed to one PE each cycle.  Dense PEs receive beta
     * elements (one per lane); sparse PEs receive beta whole blocks of
     * M elements for the muxes to choose from (Table III).
     */
    u32 inputsPerPe() const { return sparse ? beta * 4 : beta; }

    /** ceil(log2(beta)): reduction-tree depth below the array. */
    u32 reductionDepth() const;

    /**
     * Drain-stage latency: the horizontal traversal of Ncols PE
     * columns, but never less than the reduction pipeline needs
     * (log2(beta) + 1).  Reproduces every Table III entry.
     */
    Cycles drainLatency() const;

    /** Effective N the engine executes for a requested N:4 pattern. */
    u32 effectiveN(u32 requested_n) const;

    /** Can the engine execute this tile-compute opcode at all? */
    bool supportsOpcode(isa::Opcode op) const;

    std::string toString() const;
};

/** Named design points of Table III. */
EngineConfig vegetaD11();  ///< conventional SA / RASA-SM
EngineConfig vegetaD12();  ///< RASA-DM (SOTA dense baseline)
EngineConfig vegetaD161(); ///< Intel TMUL-inspired unit
EngineConfig vegetaS12();  ///< new sparse design, alpha=1
EngineConfig vegetaS22();
EngineConfig vegetaS42();
EngineConfig vegetaS82();
EngineConfig vegetaS162();
/** VEGETA-S-1-2 restricted to 2:4 (NVIDIA STC-like config). */
EngineConfig stcLike();

/** All Table III rows, in table order. */
std::vector<EngineConfig> allTableIIIConfigs();

/** Table III rows plus the STC-like config (Figure 13 engine set). */
std::vector<EngineConfig> allEvaluatedConfigs();

/** Look up a config by name (nullopt if unknown). */
std::optional<EngineConfig> configByName(const std::string &name);

} // namespace vegeta::engine

#endif // VEGETA_ENGINE_CONFIG_HPP
