/**
 * @file
 * Cycle-by-cycle systolic dataflow simulation of a VEGETA engine
 * executing one tile GEMM/SPMM instruction (paper Figures 8 and 9).
 *
 * This is the microarchitectural ground truth of the repo: weights are
 * held stationary per MAC lane, input vectors stream west to east
 * through per-SPE pipeline registers, partial sums trickle south with
 * per-lane datapaths, bottom adder trees reduce the beta lanes, and the
 * sparse input selection happens through real M:1 muxes driven by the
 * 2-bit metadata.  Tests assert the computed C matches the functional
 * emulator exactly and the cycle counts match the pipeline timing
 * model.
 *
 * Mapping (Section V-B): the 32 stored values of weight row i map to
 * SPU column i (value v = p * beta + lane sits at PE row p); the input
 * vector entering PE row p for output column j carries
 *   - TILE_GEMM:   B(beta*p + lane, j) per lane (half block),
 *   - TILE_SPMM_U: block p of B(:, j) (4 elements, muxed per lane),
 *   - TILE_SPMM_V: blocks 2p and 2p+1 (8 elements, block per lane).
 */

#ifndef VEGETA_ENGINE_SYSTOLIC_HPP
#define VEGETA_ENGINE_SYSTOLIC_HPP

#include <optional>
#include <vector>

#include "engine/config.hpp"
#include "numerics/matrix.hpp"
#include "sparsity/compressed_tile.hpp"

namespace vegeta::engine {

/** Result of simulating one instruction through the array. */
struct SystolicResult
{
    MatrixF c;            ///< accumulated 16x16 output
    Cycles totalCycles;   ///< first WL cycle .. last write-back
    u64 macFirings = 0;   ///< MAC activations (incl. stored zeros)
    u64 activeCycles = 0; ///< cycles with at least one active MAC
    double
    utilization() const
    {
        if (activeCycles == 0)
            return 0.0;
        return static_cast<double>(macFirings) /
               (static_cast<double>(activeCycles) * kTotalMacs);
    }
};

/** Cycle-level simulator of one engine instance. */
class SystolicSimulator
{
  public:
    explicit SystolicSimulator(EngineConfig config);

    const EngineConfig &config() const { return config_; }

    /**
     * TILE_GEMM: C (16x16) += A (16x32 dense) x B, with B provided
     * transposed (bt is 16x32, bt(j,k) = B(k,j)).
     */
    SystolicResult runGemm(const MatrixBF16 &a, const MatrixBF16 &bt,
                           const MatrixF &c_init) const;

    /**
     * TILE_SPMM_U / TILE_SPMM_V: C += A x B for a 2:4 or 1:4
     * compressed A (16 rows x 32 stored values) and transposed B
     * (16x64 for 2:4, 16x128 for 1:4).  Engine must be sparse and
     * support the tile's N.
     */
    SystolicResult runSpmm(const CompressedTile &a, const MatrixBF16 &bt,
                           const MatrixF &c_init) const;

    /**
     * TILE_SPMM_R: C (R x 16) += A (row-wise N:4, R x 64 effective)
     * x B (64 x 16, transposed).  Implements the Figure 11 mapping:
     * row r occupies N_r of the 32 MAC lane-columns (a 4:4 row spans
     * an SPE-1-4-like slice, a 1:4 row a single lane), every PE row p
     * receives block p of B, and a bottom adder row reduces each
     * weight row's lanes.  Requires a full flexible-N:M design
     * (minSupportedN == 1) and a tile whose N budget fits
     * (sum of N_r <= 32).
     */
    SystolicResult runSpmmRowWise(const RowWiseCompressedTile &a,
                                  const MatrixBF16 &bt,
                                  const MatrixF &c_init) const;

  private:
    struct Mapping;

    SystolicResult run(const Mapping &mapping, const MatrixBF16 &bt,
                       const MatrixF &c_init) const;

    EngineConfig config_;
};

} // namespace vegeta::engine

#endif // VEGETA_ENGINE_SYSTOLIC_HPP
