#include "engine/pipeline.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace vegeta::engine {

PipelineModel::PipelineModel(EngineConfig config, bool output_forwarding)
    : config_(std::move(config)), output_forwarding_(output_forwarding)
{
}

StageLatencies
PipelineModel::stages(const isa::Instruction &instr) const
{
    VEGETA_ASSERT(isa::isTileCompute(instr.op), "engine executes only ",
                  "tile-compute instructions, got ",
                  isa::opcodeName(instr.op));
    VEGETA_ASSERT(config_.supportsOpcode(instr.op), config_.name,
                  " cannot execute ", isa::opcodeName(instr.op));

    StageLatencies lat;
    lat.wl = config_.nRows();
    lat.ff = kTileN;
    lat.fs = config_.nRows() - 1;
    lat.dr = config_.drainLatency();
    return lat;
}

ScheduledOp
PipelineModel::issue(const isa::Instruction &instr, Cycles earliest_start)
{
    const StageLatencies lat = stages(instr);
    const std::array<Cycles, 4> len = {lat.wl, lat.ff, lat.fs, lat.dr};

    Cycles start = earliest_start;

    // Stage occupancy: instruction i's entry into stage s must wait for
    // instruction i-1 to leave stage s.  Stage s of this instruction
    // begins at start + offset(s).
    if (any_issued_) {
        Cycles offset = 0;
        for (u32 s = 0; s < 4; ++s) {
            if (last_stage_exit_[s] > offset)
                start = std::max(start, last_stage_exit_[s] - offset);
            offset += len[s];
        }
    }

    // Register dependencies.
    const isa::RegList accumulate = instr.accumulateRegList();
    auto is_accumulate = [&](u32 reg) {
        return accumulate.contains(reg);
    };

    for (u32 reg : instr.readRegList()) {
        const Cycles full_ready = reg_full_ready_[reg];
        if (full_ready == 0) // sentinel: never engine-written
            continue;
        if (is_accumulate(reg)) {
            // The C operand is not needed until the FF stage begins
            // (Figure 10c: the dependent instruction's WL overlaps the
            // producer's tail even without OF).
            Cycles ff_earliest = full_ready;
            if (output_forwarding_) {
                // OF: C may be read once the producer has begun
                // writing it back, Nrows + log2(beta) cycles after the
                // producer's FF begin, element by element in the same
                // order (Figure 10d).
                const Cycles producer_ff =
                    reg_of_producer_ff_[reg];
                if (producer_ff != 0) {
                    const Cycles of_delay =
                        config_.nRows() + config_.reductionDepth();
                    ff_earliest = producer_ff + of_delay;
                }
            }
            if (ff_earliest > lat.ffOffset())
                start = std::max(start, ff_earliest - lat.ffOffset());
        } else {
            // A/B operands are stationary weights / west inputs needed
            // from WL onward: wait for the full write-back.
            start = std::max(start, full_ready);
        }
    }

    // WAW on outputs: never reorder write-back of the same register
    // (the zero sentinel makes the max() a no-op for untouched regs).
    for (u32 reg : instr.writeRegList()) {
        if (!is_accumulate(reg))
            start = std::max(start, reg_full_ready_[reg]);
    }

    ScheduledOp op;
    op.instr = instr;
    op.start = start;
    op.ffStart = start + lat.ffOffset();
    op.finish = start + lat.total();

    // Update stage exits.
    Cycles offset = 0;
    for (u32 s = 0; s < 4; ++s) {
        last_stage_exit_[s] = start + offset + len[s];
        offset += len[s];
    }
    any_issued_ = true;

    for (u32 reg : instr.writeRegList()) {
        reg_full_ready_[reg] = op.finish;
        reg_of_producer_ff_[reg] = is_accumulate(reg) ? op.ffStart : 0;
    }

    busy_until_ = std::max(busy_until_, op.finish);
    return op;
}

Cycles
PipelineModel::regReadyFull(u32 reg) const
{
    VEGETA_ASSERT(reg < isa::kNumDepRegs, "dep-reg id out of range");
    return reg_full_ready_[reg]; // 0 = never written, same contract
}

void
PipelineModel::invalidateReg(u32 reg)
{
    VEGETA_ASSERT(reg < isa::kNumDepRegs, "dep-reg id out of range");
    reg_full_ready_[reg] = 0;
    reg_of_producer_ff_[reg] = 0;
}

void
PipelineModel::reset()
{
    last_stage_exit_.fill(0);
    any_issued_ = false;
    reg_full_ready_.fill(0);
    reg_of_producer_ff_.fill(0);
    busy_until_ = 0;
}

std::vector<ScheduledOp>
PipelineModel::scheduleAll(const std::vector<isa::Instruction> &instrs)
{
    std::vector<ScheduledOp> out;
    out.reserve(instrs.size());
    for (const auto &instr : instrs)
        out.push_back(issue(instr, 0));
    return out;
}

Cycles
initiationInterval(const EngineConfig &config)
{
    const StageLatencies lat = {config.nRows(), kTileN,
                                config.nRows() - 1,
                                config.drainLatency()};
    return std::max({lat.wl, lat.ff, lat.fs, lat.dr});
}

Cycles
isolatedLatency(const EngineConfig &config, const isa::Instruction &instr)
{
    PipelineModel model(config);
    return model.issue(instr, 0).finish;
}

} // namespace vegeta::engine
