#include "engine/systolic.hpp"

#include <algorithm>
#include <deque>

#include "common/logging.hpp"

namespace vegeta::engine {

namespace {

constexpr u32 kSpuCols = 16;     ///< weight rows -> SPU columns
constexpr u32 kStoredPerRow = 32; ///< stored weight values per row
constexpr u32 kMaxVecElems = 8;  ///< max input elements per PE row

} // namespace

/**
 * Instruction-specific mapping: stationary weights, per-value input mux
 * selects, and the effective-B column carried by each input vector
 * element of each PE row.
 */
struct SystolicSimulator::Mapping
{
    MatrixBF16 weights;        ///< 16 x 32 stored values
    std::vector<u8> sel;       ///< (i * 32 + v) -> vector element index
    u32 elemsPerVector = 1;    ///< input vector width per PE row
    std::vector<u32> inputCol; ///< (p * elems + e) -> column k of B
    u32 effectiveK = 32;       ///< effective inner dimension
};

SystolicSimulator::SystolicSimulator(EngineConfig config)
    : config_(std::move(config))
{
}

SystolicResult
SystolicSimulator::runGemm(const MatrixBF16 &a, const MatrixBF16 &bt,
                           const MatrixF &c_init) const
{
    VEGETA_ASSERT(a.rows() == kSpuCols && a.cols() == kStoredPerRow,
                  "TILE_GEMM A must be 16x32");
    VEGETA_ASSERT(bt.rows() == kTileN && bt.cols() == kStoredPerRow,
                  "TILE_GEMM Bt must be 16x32");

    Mapping map;
    map.weights = a;
    map.effectiveK = kStoredPerRow;
    map.elemsPerVector = config_.beta;
    map.sel.resize(kSpuCols * kStoredPerRow);
    for (u32 i = 0; i < kSpuCols; ++i)
        for (u32 v = 0; v < kStoredPerRow; ++v)
            map.sel[i * kStoredPerRow + v] =
                static_cast<u8>(v % config_.beta);
    map.inputCol.resize(config_.nRows() * map.elemsPerVector);
    for (u32 p = 0; p < config_.nRows(); ++p)
        for (u32 e = 0; e < map.elemsPerVector; ++e)
            map.inputCol[p * map.elemsPerVector + e] =
                p * config_.beta + e;
    return run(map, bt, c_init);
}

SystolicResult
SystolicSimulator::runSpmm(const CompressedTile &a, const MatrixBF16 &bt,
                           const MatrixF &c_init) const
{
    VEGETA_ASSERT(config_.sparse, config_.name,
                  " is a dense engine; cannot run TILE_SPMM");
    const u32 n = a.pattern().n;
    VEGETA_ASSERT(n == 1 || n == 2, "TILE_SPMM expects a 1:4 or 2:4 tile");
    VEGETA_ASSERT(config_.minSupportedN <= n, config_.name,
                  " does not support ", a.pattern().toString());
    VEGETA_ASSERT(config_.beta == 2, "SPE designs fix beta = M/2 = 2");
    VEGETA_ASSERT(a.rows() == kSpuCols &&
                      a.valuesPerRow() == kStoredPerRow,
                  "compressed tile must store 16x32 values");
    VEGETA_ASSERT(bt.rows() == kTileN &&
                      bt.cols() == a.effectiveCols(),
                  "Bt shape mismatch: ", bt.cols(), " vs effective ",
                  a.effectiveCols());

    Mapping map;
    map.weights = a.values();
    map.effectiveK = a.effectiveCols();
    map.sel.resize(kSpuCols * kStoredPerRow);

    if (n == 2) {
        // 2:4 -- one block of 4 per PE row; both lanes mux within it.
        map.elemsPerVector = 4;
        for (u32 i = 0; i < kSpuCols; ++i)
            for (u32 v = 0; v < kStoredPerRow; ++v)
                map.sel[i * kStoredPerRow + v] =
                    static_cast<u8>(a.index(i, v));
        map.inputCol.resize(config_.nRows() * 4);
        for (u32 p = 0; p < config_.nRows(); ++p)
            for (u32 e = 0; e < 4; ++e)
                map.inputCol[p * 4 + e] = p * 4 + e;
    } else {
        // 1:4 -- two blocks of 4 per PE row; lane l muxes in block l.
        map.elemsPerVector = 8;
        for (u32 i = 0; i < kSpuCols; ++i) {
            for (u32 v = 0; v < kStoredPerRow; ++v) {
                const u32 lane = v % 2;
                map.sel[i * kStoredPerRow + v] =
                    static_cast<u8>(4 * lane + a.index(i, v));
            }
        }
        map.inputCol.resize(config_.nRows() * 8);
        for (u32 p = 0; p < config_.nRows(); ++p)
            for (u32 e = 0; e < 8; ++e)
                map.inputCol[p * 8 + e] = p * 8 + e;
    }
    return run(map, bt, c_init);
}

SystolicResult
SystolicSimulator::runSpmmRowWise(const RowWiseCompressedTile &a,
                                  const MatrixBF16 &bt,
                                  const MatrixF &c_init) const
{
    VEGETA_ASSERT(config_.sparse && config_.minSupportedN == 1,
                  config_.name, " cannot execute TILE_SPMM_R");
    VEGETA_ASSERT(config_.beta == 2, "SPE designs fix beta = 2");
    VEGETA_ASSERT(a.effectiveCols() == 64,
                  "row-wise tiles are R x 64 effective");
    VEGETA_ASSERT(bt.rows() == kTileN && bt.cols() == 64,
                  "Bt must be 16x64");
    const u32 rows = a.rows();
    VEGETA_ASSERT(c_init.rows() == rows && c_init.cols() == kTileN,
                  "C must be R x 16");

    const u32 nrows = config_.nRows(); // 16 = blocks per row
    const u32 ncols = config_.nCols();
    const u32 lanes_total = ncols * config_.alpha * config_.beta; // 32
    const u32 lanes_per_spe = config_.alpha * config_.beta;

    // Figure 11 mapping: row r occupies N_r consecutive lane-columns;
    // its stored value v = p * N_r + l sits at PE row p (= block p),
    // lane slot l.
    u32 sum_n = 0;
    for (u32 r = 0; r < rows; ++r)
        sum_n += a.rowN(r);
    VEGETA_ASSERT(sum_n <= lanes_total, "tile N budget ", sum_n,
                  " exceeds the ", lanes_total, " MAC lane-columns");

    struct Lane
    {
        bool used = false;
        u32 row = 0;  ///< weight/C row this lane contributes to
        std::array<BF16, 16> weight{};
        std::array<u8, 16> sel{};
    };
    std::vector<Lane> lanes(lanes_total);

    u32 slot = 0;
    for (u32 r = 0; r < rows; ++r) {
        const u32 n = a.rowN(r);
        const u32 base = a.rowOffset(r);
        for (u32 l = 0; l < n; ++l) {
            Lane &lane = lanes[slot + l];
            lane.used = true;
            lane.row = r;
            for (u32 p = 0; p < nrows; ++p) {
                // Stream is packed per block: block p's l-th value.
                const u32 linear = base + p * n + l;
                lane.weight[p] = a.value(linear);
                lane.sel[p] = static_cast<u8>(a.index(linear));
            }
        }
        slot += n;
    }

    struct InVec
    {
        bool valid = false;
        u32 j = 0;
        std::array<BF16, 4> elems{};
    };
    std::vector<InVec> in(std::size_t{nrows} * ncols);
    auto in_at = [&](u32 p, u32 c) -> InVec & {
        return in[std::size_t{p} * ncols + c];
    };

    struct Psum
    {
        bool valid = false;
        u32 j = 0;
        float value = 0.0f;
    };
    std::vector<Psum> psum(std::size_t{nrows} * lanes_total);
    auto psum_at = [&](u32 p, u32 lc) -> Psum & {
        return psum[std::size_t{p} * lanes_total + lc];
    };

    // Per-(row, j) reduction collection at the bottom adder row.
    struct Pending
    {
        Cycles ready;
        u32 row, j;
        float value;
    };
    std::deque<Pending> writebacks;
    // Partial collection: lanes of one (row, j) may emerge from
    // different SPE columns on different cycles.
    std::vector<u32> lanes_seen(std::size_t{rows} * kTileN, 0);
    std::vector<float> lane_sum(std::size_t{rows} * kTileN, 0.0f);
    std::vector<Cycles> last_emerge(std::size_t{rows} * kTileN, 0);

    auto reduction_depth = [](u32 n) {
        u32 d = 0;
        while ((1u << d) < n)
            ++d;
        return d;
    };

    SystolicResult result;
    result.c = c_init;
    u32 outputs_written = 0;
    const u32 outputs_total = rows * kTileN;
    Cycles last_writeback = 0;
    const Cycles ff_start = nrows;
    const Cycles cycle_cap =
        ff_start + kTileN + nrows + ncols + 8 + 16;

    for (Cycles t = 0; t < cycle_cap && outputs_written < outputs_total;
         ++t) {
        while (!writebacks.empty() && writebacks.front().ready <= t) {
            const Pending &p = writebacks.front();
            result.c.at(p.row, p.j) = p.value;
            last_writeback = std::max(last_writeback, p.ready);
            ++outputs_written;
            writebacks.pop_front();
        }
        if (t < ff_start)
            continue;

        for (u32 p = 0; p < nrows; ++p) {
            for (u32 c = ncols; c-- > 1;)
                in_at(p, c) = in_at(p, c - 1);
            InVec fresh;
            const i64 j = static_cast<i64>(t) -
                          static_cast<i64>(ff_start) - p;
            if (j >= 0 && j < kTileN) {
                fresh.valid = true;
                fresh.j = static_cast<u32>(j);
                for (u32 e = 0; e < 4; ++e)
                    fresh.elems[e] =
                        bt.at(static_cast<u32>(j), p * 4 + e);
            }
            in_at(p, 0) = fresh;
        }

        bool any_active = false;
        for (u32 p = nrows; p-- > 0;) {
            for (u32 lc = 0; lc < lanes_total; ++lc) {
                const Lane &lane = lanes[lc];
                const u32 c = lc / lanes_per_spe;
                const InVec &vec = in_at(p, c);
                Psum out;
                if (lane.used && vec.valid) {
                    float upstream;
                    if (p == 0) {
                        // The first lane of a row carries the C
                        // accumulator injected from the north.
                        const bool first =
                            lc == 0 || lanes[lc - 1].row != lane.row ||
                            !lanes[lc - 1].used;
                        upstream = first
                                       ? result.c.at(lane.row, vec.j)
                                       : 0.0f;
                    } else {
                        const Psum &up = psum_at(p - 1, lc);
                        VEGETA_ASSERT(up.valid && up.j == vec.j,
                                      "row-wise wavefront misaligned");
                        upstream = up.value;
                    }
                    out.valid = true;
                    out.j = vec.j;
                    out.value = macBF16(upstream, lane.weight[p],
                                        vec.elems[lane.sel[p]]);
                    ++result.macFirings;
                    any_active = true;

                    if (p == nrows - 1) {
                        const std::size_t key =
                            std::size_t{lane.row} * kTileN + out.j;
                        lane_sum[key] += out.value;
                        last_emerge[key] = std::max(last_emerge[key], t);
                        if (++lanes_seen[key] == a.rowN(lane.row)) {
                            const Cycles ready =
                                last_emerge[key] +
                                reduction_depth(a.rowN(lane.row)) + 1;
                            writebacks.push_back({ready, lane.row,
                                                  out.j,
                                                  lane_sum[key]});
                        }
                    }
                }
                psum_at(p, lc) = out;
            }
        }
        if (any_active)
            ++result.activeCycles;
    }

    while (!writebacks.empty()) {
        const Pending &p = writebacks.front();
        result.c.at(p.row, p.j) = p.value;
        last_writeback = std::max(last_writeback, p.ready);
        ++outputs_written;
        writebacks.pop_front();
    }
    VEGETA_ASSERT(outputs_written == outputs_total,
                  "row-wise systolic run incomplete: ", outputs_written,
                  " of ", outputs_total);
    result.totalCycles = last_writeback;
    return result;
}

SystolicResult
SystolicSimulator::run(const Mapping &map, const MatrixBF16 &bt,
                       const MatrixF &c_init) const
{
    const u32 nrows = config_.nRows();
    const u32 ncols = config_.nCols();
    const u32 alpha = config_.alpha;
    const u32 beta = config_.beta;
    const u32 red_depth = config_.reductionDepth();
    const Cycles ff_start = nrows; // WL occupies cycles [0, nrows)

    VEGETA_ASSERT(c_init.rows() == kSpuCols && c_init.cols() == kTileN,
                  "C tile must be 16x16");

    struct InVec
    {
        bool valid = false;
        u32 j = 0;
        std::array<BF16, kMaxVecElems> elems{};
    };
    struct Psum
    {
        bool valid = false;
        u32 j = 0;
        std::array<float, kMaxVecElems> lane{};
    };

    // Input pipeline registers per (PE row, SPE column).
    std::vector<InVec> in(std::size_t{nrows} * ncols);
    auto in_at = [&](u32 p, u32 c) -> InVec & {
        return in[std::size_t{p} * ncols + c];
    };
    // Lane partial sums leaving each PE row, per SPU column.
    std::vector<Psum> psum(std::size_t{nrows} * kSpuCols);
    auto psum_at = [&](u32 p, u32 i) -> Psum & {
        return psum[std::size_t{p} * kSpuCols + i];
    };

    // Pipelined bottom reduction: entries become architectural
    // (written back) at readyCycle.
    struct Pending
    {
        Cycles ready;
        u32 i, j;
        float value;
    };
    std::deque<Pending> reduction;

    SystolicResult result;
    result.c = c_init;
    u32 outputs_written = 0;
    Cycles last_writeback = 0;
    const u32 outputs_total = kSpuCols * kTileN;

    const Cycles cycle_cap = ff_start + kTileN + nrows + ncols +
                             red_depth + 16;
    Cycles t = 0;
    for (; t < cycle_cap && outputs_written < outputs_total; ++t) {
        // Retire finished reductions.
        while (!reduction.empty() && reduction.front().ready <= t) {
            const Pending &p = reduction.front();
            result.c.at(p.i, p.j) = p.value;
            last_writeback = std::max(last_writeback, p.ready);
            ++outputs_written;
            reduction.pop_front();
        }

        if (t < ff_start)
            continue; // weight-load stage

        // Shift input registers east; feed the west edge.
        for (u32 p = 0; p < nrows; ++p) {
            for (u32 c = ncols; c-- > 1;)
                in_at(p, c) = in_at(p, c - 1);
            InVec fresh;
            const i64 j = static_cast<i64>(t) - static_cast<i64>(ff_start) -
                          p;
            if (j >= 0 && j < kTileN) {
                fresh.valid = true;
                fresh.j = static_cast<u32>(j);
                for (u32 e = 0; e < map.elemsPerVector; ++e) {
                    const u32 k = map.inputCol[p * map.elemsPerVector + e];
                    fresh.elems[e] = bt.at(static_cast<u32>(j), k);
                }
            }
            in_at(p, 0) = fresh;
        }

        // Compute bottom-up so each row reads the previous cycle's
        // psum of the row above before that row overwrites it.
        bool any_active = false;
        for (u32 p = nrows; p-- > 0;) {
            for (u32 c = 0; c < ncols; ++c) {
                const InVec &vec = in_at(p, c);
                for (u32 s = 0; s < alpha; ++s) {
                    const u32 i = c * alpha + s;
                    Psum out;
                    if (vec.valid) {
                        Psum upstream;
                        if (p == 0) {
                            upstream.valid = true;
                            upstream.j = vec.j;
                            upstream.lane.fill(0.0f);
                            upstream.lane[0] = result.c.at(i, vec.j);
                        } else {
                            upstream = psum_at(p - 1, i);
                            VEGETA_ASSERT(upstream.valid &&
                                              upstream.j == vec.j,
                                          "psum/input wavefront "
                                          "misaligned at row ",
                                          p, " col ", i);
                        }
                        out.valid = true;
                        out.j = vec.j;
                        for (u32 l = 0; l < beta; ++l) {
                            const u32 v = p * beta + l;
                            const BF16 w = map.weights.at(i, v);
                            const u32 e = map.sel[i * kStoredPerRow + v];
                            const BF16 x = vec.elems[e];
                            out.lane[l] =
                                macBF16(upstream.lane[l], w, x);
                            ++result.macFirings;
                        }
                        any_active = true;
                    }
                    psum_at(p, i) = out;

                    // Bottom of the array: reduce lanes and schedule
                    // the write-back.
                    if (p == nrows - 1 && out.valid) {
                        float total = out.lane[0];
                        for (u32 l = 1; l < beta; ++l)
                            total += out.lane[l];
                        reduction.push_back(
                            {t + red_depth + 1, i, out.j, total});
                    }
                }
            }
        }
        if (any_active)
            ++result.activeCycles;
    }

    // Drain any reductions that are still pending.
    while (!reduction.empty()) {
        const Pending &p = reduction.front();
        result.c.at(p.i, p.j) = p.value;
        last_writeback = std::max(last_writeback, p.ready);
        ++outputs_written;
        reduction.pop_front();
    }
    VEGETA_ASSERT(outputs_written == outputs_total,
                  "systolic run incomplete: ", outputs_written, " of ",
                  outputs_total, " outputs");
    result.totalCycles = last_writeback;
    return result;
}

} // namespace vegeta::engine
