/**
 * @file
 * Analytical area / power / frequency model of VEGETA engines
 * (paper Section VI-D, Figure 14).
 *
 * The paper synthesizes RTL (Synopsys DC, Nangate 15nm) for each
 * design; offline we model the same first-order effects with a
 * component-count model:
 *
 *  - MAC datapath (BF16 multiplier, FP32 adder, weight + psum
 *    registers): 512 instances in every design -- the constant bulk.
 *  - Per-PE overhead (horizontal pipeline latching, control): shrinks
 *    as alpha grows because PUs share a PE (Nrows x Ncols instances);
 *    this is the "amortized and compensated" effect of Section VI-D.
 *  - Input pipeline registers: Nrows x Ncols x inputsPerPe 16-bit
 *    elements (sparse PEs buffer whole blocks).
 *  - Sparse extras: one M:1 mux + 2-bit metadata entry per MAC,
 *    bottom reduction adders (Ncols x alpha x (beta-1)), and one input
 *    selector per row.
 *
 * Constants are calibrated to the figures the paper reports:
 * VEGETA-S-1-2 is the worst case at ~6% area overhead over RASA-SM;
 * S-8-2 / S-16-2 are *smaller* than RASA-SM; power overheads for
 * S-alpha-2 are ~17/8/4/3/1% for alpha = 1/2/4/8/16; maximum frequency
 * decreases with alpha (broadcast wire length) and every design meets
 * the 0.5 GHz evaluation clock.
 */

#ifndef VEGETA_ENGINE_AREA_MODEL_HPP
#define VEGETA_ENGINE_AREA_MODEL_HPP

#include "engine/config.hpp"

namespace vegeta::engine {

/** Raw (unnormalized) model outputs for one engine design. */
struct PhysicalEstimate
{
    double areaUnits = 0.0;   ///< arbitrary component-area units
    double powerUnits = 0.0;  ///< arbitrary component-power units
    double maxFrequencyGhz = 0.0;

    /** Component breakdown (areaUnits = sum of these). */
    double macArea = 0.0;
    double peOverheadArea = 0.0;
    double inputBufferArea = 0.0;
    double sparseExtrasArea = 0.0;
};

/**
 * Evaluate the physical model for one design.
 *
 * @param block_size sparsity block size M (Sections IV-C / V-D): a
 *     larger M widens the per-MAC input mux to M:1, grows the
 *     metadata to log2(M) bits per value, widens the sparse input
 *     vectors to beta * M elements, and deepens the mux critical
 *     path.  The shipped design uses M = 4.
 */
PhysicalEstimate estimatePhysical(const EngineConfig &config,
                                  u32 block_size = 4);

/** Figure 14 row: area/power normalized to RASA-SM + frequency. */
struct NormalizedPhysical
{
    std::string name;
    double normalizedArea = 0.0;
    double normalizedPower = 0.0;
    double maxFrequencyGhz = 0.0;
};

/**
 * Normalize each design against the RASA-SM baseline (VEGETA-D-1-1),
 * reproducing Figure 14.
 */
std::vector<NormalizedPhysical>
figure14Series(const std::vector<EngineConfig> &configs);

/** The 0.5 GHz clock all evaluated designs meet (Section VI-C). */
inline constexpr double kEvaluationFrequencyGhz = 0.5;

} // namespace vegeta::engine

#endif // VEGETA_ENGINE_AREA_MODEL_HPP
