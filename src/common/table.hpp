/**
 * @file
 * ASCII table / CSV printing used by the benchmark harnesses to emit
 * paper-style tables and figure series.
 */

#ifndef VEGETA_COMMON_TABLE_HPP
#define VEGETA_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace vegeta {

/**
 * A simple column-aligned text table.  Cells are strings; numeric
 * convenience overloads format with a fixed precision.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row. */
    Table &row();

    /** Append a cell to the current row. */
    Table &cell(const std::string &value);
    Table &cell(const char *value);
    Table &cell(double value, int precision = 3);
    Table &cell(long long value);
    Table &cell(unsigned long long value);
    Table &cell(int value);

    std::size_t numRows() const { return rows_.size(); }

    /** Render with aligned columns and a header separator. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (helper shared with benches). */
std::string formatDouble(double value, int precision);

} // namespace vegeta

#endif // VEGETA_COMMON_TABLE_HPP
