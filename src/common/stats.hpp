/**
 * @file
 * Lightweight statistics collection for the simulators.
 *
 * A StatGroup is a named bag of scalar counters and distributions; the
 * CPU/engine models register counters once and bump them during
 * simulation.  Dumping produces deterministic, alphabetized output.
 */

#ifndef VEGETA_COMMON_STATS_HPP
#define VEGETA_COMMON_STATS_HPP

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace vegeta {

/** A running scalar statistic (count / sum / min / max). */
class ScalarStat
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        sum_ += v;
        ++count_;
    }

    void increment(double v = 1.0) { sample(v); }

    u64 count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

  private:
    u64 count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Named collection of scalar statistics. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Get-or-create a named statistic. */
    ScalarStat &stat(const std::string &name) { return stats_[name]; }

    const ScalarStat *find(const std::string &name) const;

    const std::string &name() const { return name_; }

    /** Dump "group.stat sum count mean" lines, alphabetized. */
    void dump(std::ostream &os) const;

    void clear() { stats_.clear(); }

  private:
    std::string name_;
    std::map<std::string, ScalarStat> stats_;
};

/** Geometric mean of a series (used for speed-up summaries). */
double geomean(const std::vector<double> &values);

} // namespace vegeta

#endif // VEGETA_COMMON_STATS_HPP
