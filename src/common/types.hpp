/**
 * @file
 * Fundamental type aliases shared across the VEGETA library.
 */

#ifndef VEGETA_COMMON_TYPES_HPP
#define VEGETA_COMMON_TYPES_HPP

#include <cstddef>
#include <cstdint>

namespace vegeta {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Simulation time expressed in clock cycles of some clock domain. */
using Cycles = std::uint64_t;

/** Byte address in the emulated flat memory. */
using Addr = std::uint64_t;

} // namespace vegeta

#endif // VEGETA_COMMON_TYPES_HPP
