#include "common/stats.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace vegeta {

const ScalarStat *
StatGroup::find(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? nullptr : &it->second;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : stats_) {
        os << name_ << "." << name << " sum=" << stat.sum()
           << " count=" << stat.count() << " mean=" << stat.mean() << "\n";
    }
}

double
geomean(const std::vector<double> &values)
{
    VEGETA_ASSERT(!values.empty(), "geomean of empty series");
    double log_sum = 0.0;
    for (double v : values) {
        VEGETA_ASSERT(v > 0.0, "geomean requires positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace vegeta
