#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hpp"

namespace vegeta {

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    VEGETA_ASSERT(!headers_.empty(), "table needs at least one column");
}

Table &
Table::row()
{
    VEGETA_ASSERT(rows_.empty() || rows_.back().size() == headers_.size(),
                  "previous row incomplete: ", rows_.back().size(), " of ",
                  headers_.size(), " cells");
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    VEGETA_ASSERT(!rows_.empty(), "cell() before row()");
    VEGETA_ASSERT(rows_.back().size() < headers_.size(),
                  "too many cells in row");
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(const char *value)
{
    return cell(std::string(value));
}

Table &
Table::cell(double value, int precision)
{
    return cell(formatDouble(value, precision));
}

Table &
Table::cell(long long value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(unsigned long long value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(int value)
{
    return cell(std::to_string(value));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &text = c < cells.size() ? cells[c] : "";
            os << " " << std::left << std::setw(static_cast<int>(widths[c]))
               << text << " |";
        }
        os << "\n";
    };

    print_row(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << cells[c];
        }
        os << "\n";
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace vegeta
