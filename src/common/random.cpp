#include "common/random.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace vegeta {

namespace {

u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

u64
splitmix64(u64 &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    u64 z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(u64 seed)
{
    u64 s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

u64
Rng::next()
{
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

u64
Rng::nextBelow(u64 bound)
{
    VEGETA_ASSERT(bound > 0, "nextBelow bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = (0 - bound) % bound;
    for (;;) {
        u64 r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float
Rng::nextFloat(float lo, float hi)
{
    return lo + static_cast<float>(nextDouble()) * (hi - lo);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

float
Rng::nextGaussian()
{
    double sum = 0.0;
    for (int i = 0; i < 12; ++i)
        sum += nextDouble();
    return static_cast<float>(sum - 6.0);
}

Rng
Rng::fork()
{
    u64 s = next();
    return Rng(splitmix64(s));
}

std::vector<u32>
Rng::choose(u32 n, u32 k)
{
    VEGETA_ASSERT(k <= n, "choose: k=", k, " exceeds n=", n);
    std::vector<u32> pool(n);
    for (u32 i = 0; i < n; ++i)
        pool[i] = i;
    for (u32 i = 0; i < k; ++i) {
        u32 j = i + static_cast<u32>(nextBelow(n - i));
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    std::sort(pool.begin(), pool.end());
    return pool;
}

} // namespace vegeta
