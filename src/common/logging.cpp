#include "common/logging.hpp"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace vegeta {

namespace {

/**
 * Tests want to intercept panic/fatal instead of killing the process.
 * When VEGETA_LOGGING_THROWS is set (see SimError below), panic/fatal
 * throw instead of aborting.
 */
bool throwOnError = false;

} // namespace

void
setLoggingThrows(bool throws)
{
    throwOnError = throws;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    if (throwOnError)
        throw std::logic_error("panic: " + msg);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    if (throwOnError)
        throw std::runtime_error("fatal: " + msg);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace vegeta
