/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (unstructured sparsity masks,
 * synthetic weights, property-test inputs) flows through Rng so that every
 * experiment is reproducible bit-for-bit from a seed.  The core generator
 * is xoshiro256** seeded via SplitMix64, both public-domain algorithms.
 */

#ifndef VEGETA_COMMON_RANDOM_HPP
#define VEGETA_COMMON_RANDOM_HPP

#include <array>
#include <vector>

#include "common/types.hpp"

namespace vegeta {

/**
 * One SplitMix64 step: advance @p state and return the next value of
 * the stream.  This is the library's one audited seed expander -- Rng
 * seeds its xoshiro state from it, and anything that needs a cheap
 * standalone deterministic stream (hash mixing, substream seeds)
 * should draw from it rather than hand-rolling a generator.
 */
u64 splitmix64(u64 &state);

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x5eed5eed5eedULL);

    /** Next raw 64-bit value. */
    u64 next();

    /** Uniform integer in [0, bound). bound must be > 0. */
    u64 nextBelow(u64 bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform float in [lo, hi). */
    float nextFloat(float lo, float hi);

    /** Bernoulli trial: true with probability p. */
    bool nextBool(double p);

    /** Standard-normal-ish value via sum of uniforms (Irwin-Hall, n=12). */
    float nextGaussian();

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(nextBelow(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Choose exactly k distinct positions out of n (reservoir-free,
     * partial Fisher-Yates).  Returned positions are sorted.
     */
    std::vector<u32> choose(u32 n, u32 k);

    /**
     * A statistically independent child generator: seeded from this
     * generator's next value mixed through splitmix64, so N forks of
     * one seeded Rng give N reproducible substreams (the tuner seeds
     * one fork per search round this way).
     */
    Rng fork();

  private:
    std::array<u64, 4> state_;
};

} // namespace vegeta

#endif // VEGETA_COMMON_RANDOM_HPP
