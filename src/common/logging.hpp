/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - internal invariant violated; aborts.
 * fatal()  - user/configuration error; exits with status 1.
 * warn()   - suspicious but non-fatal condition.
 * inform() - status message.
 */

#ifndef VEGETA_COMMON_LOGGING_HPP
#define VEGETA_COMMON_LOGGING_HPP

#include <sstream>
#include <string>

namespace vegeta {

/**
 * Redirect panic()/fatal() to C++ exceptions instead of abort()/exit().
 * Used by death-style unit tests that want to assert error paths.
 */
void setLoggingThrows(bool throws);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

namespace detail {

inline void
formatInto(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

} // namespace vegeta

#define VEGETA_PANIC(...)                                                    \
    ::vegeta::panicImpl(__FILE__, __LINE__,                                  \
                        ::vegeta::detail::format(__VA_ARGS__))

#define VEGETA_FATAL(...)                                                    \
    ::vegeta::fatalImpl(__FILE__, __LINE__,                                  \
                        ::vegeta::detail::format(__VA_ARGS__))

#define VEGETA_WARN(...)                                                     \
    ::vegeta::warnImpl(::vegeta::detail::format(__VA_ARGS__))

#define VEGETA_INFORM(...)                                                   \
    ::vegeta::informImpl(::vegeta::detail::format(__VA_ARGS__))

/** Assert a simulator invariant; always enabled (unlike <cassert>). */
#define VEGETA_ASSERT(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            VEGETA_PANIC("assertion failed: " #cond " ",                     \
                         ::vegeta::detail::format(__VA_ARGS__));             \
        }                                                                    \
    } while (0)

#endif // VEGETA_COMMON_LOGGING_HPP
