/**
 * @file
 * Binary encoding of VEGETA instructions.
 *
 * A fixed 128-bit format (one control word + one address word), the
 * sort of encoding the LLVM extension of Section VI-A would emit and
 * the Pintool would decode.  Layout of the control word:
 *
 *   bits  0-3   opcode
 *   bits  4-6   dst register index
 *   bits  7-8   dst register class (treg/ureg/vreg)
 *   bits  9-11  srcA register index
 *   bits 12-13  srcA register class
 *   bits 14-16  srcB register index
 *   bits 17-18  srcB register class
 *   bits 19-21  metadata register index
 *   bits 22-27  rows operand (TILE_SPMM_R, 0-32)
 *   bits 28-51  row stride in bytes (loads/stores, up to 16 MB)
 *   bits 52-63  reserved (must be zero)
 *
 * The second word is the byte address for loads/stores (zero
 * otherwise).  decode() validates class/range constraints and rejects
 * malformed words.
 */

#ifndef VEGETA_ISA_ENCODING_HPP
#define VEGETA_ISA_ENCODING_HPP

#include <optional>
#include <vector>

#include "isa/instructions.hpp"

namespace vegeta::isa {

/** One encoded instruction: control word + address word. */
struct EncodedInstruction
{
    u64 word = 0;
    u64 addr = 0;

    bool operator==(const EncodedInstruction &) const = default;
};

/** Encode an instruction (panics on malformed operands). */
EncodedInstruction encode(const Instruction &instr);

/**
 * Decode an encoded instruction.  Returns nullopt for malformed
 * encodings (bad opcode, register class/index out of range, reserved
 * bits set, operand classes inconsistent with the opcode).
 */
std::optional<Instruction> decode(const EncodedInstruction &enc);

/** Encode a whole instruction stream. */
std::vector<EncodedInstruction>
encodeStream(const std::vector<Instruction> &instrs);

/** Decode a stream; returns nullopt if any element is malformed. */
std::optional<std::vector<Instruction>>
decodeStream(const std::vector<EncodedInstruction> &words);

} // namespace vegeta::isa

#endif // VEGETA_ISA_ENCODING_HPP
