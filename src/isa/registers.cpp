#include "isa/registers.hpp"

#include <cstring>

namespace vegeta::isa {

const char *
regClassName(RegClass cls)
{
    switch (cls) {
      case RegClass::Treg:
        return "treg";
      case RegClass::Ureg:
        return "ureg";
      case RegClass::Vreg:
        return "vreg";
    }
    return "?";
}

std::string
TileReg::toString() const
{
    return std::string(regClassName(cls)) + std::to_string(index);
}

std::size_t
TileRegisterFile::flatten(TileReg reg, u32 row, u32 byte_in_row) const
{
    VEGETA_ASSERT(reg.index < regClassCount(reg.cls), "register index ",
                  static_cast<int>(reg.index), " out of range for ",
                  regClassName(reg.cls));
    VEGETA_ASSERT(row < kTregRows, "row ", row, " out of range");
    VEGETA_ASSERT(byte_in_row < regClassRowBytes(reg.cls), "byte ",
                  byte_in_row, " out of row range for ",
                  regClassName(reg.cls));
    // Logical row bytes interleave across backing tregs in 64 B chunks.
    const u32 treg_id = reg.firstTreg() + byte_in_row / kTregRowBytes;
    const u32 byte_in_treg_row = byte_in_row % kTregRowBytes;
    return std::size_t{treg_id} * kTregBytes +
           std::size_t{row} * kTregRowBytes + byte_in_treg_row;
}

u8
TileRegisterFile::readByte(TileReg reg, u32 row, u32 byte_in_row) const
{
    return backing_[flatten(reg, row, byte_in_row)];
}

void
TileRegisterFile::writeByte(TileReg reg, u32 row, u32 byte_in_row, u8 value)
{
    backing_[flatten(reg, row, byte_in_row)] = value;
}

u8
TileRegisterFile::readLinearByte(TileReg reg, u32 offset) const
{
    const u32 row_bytes = regClassRowBytes(reg.cls);
    VEGETA_ASSERT(offset < regClassBytes(reg.cls), "offset out of range");
    return readByte(reg, offset / row_bytes, offset % row_bytes);
}

void
TileRegisterFile::writeLinearByte(TileReg reg, u32 offset, u8 value)
{
    const u32 row_bytes = regClassRowBytes(reg.cls);
    VEGETA_ASSERT(offset < regClassBytes(reg.cls), "offset out of range");
    writeByte(reg, offset / row_bytes, offset % row_bytes, value);
}

BF16
TileRegisterFile::readBF16(TileReg reg, u32 row, u32 col) const
{
    u16 bits = readByte(reg, row, col * 2);
    bits |= static_cast<u16>(readByte(reg, row, col * 2 + 1)) << 8;
    return BF16::fromBits(bits);
}

void
TileRegisterFile::writeBF16(TileReg reg, u32 row, u32 col, BF16 value)
{
    writeByte(reg, row, col * 2, static_cast<u8>(value.bits() & 0xff));
    writeByte(reg, row, col * 2 + 1, static_cast<u8>(value.bits() >> 8));
}

float
TileRegisterFile::readF32(TileReg reg, u32 row, u32 col) const
{
    u32 bits = 0;
    for (u32 b = 0; b < 4; ++b)
        bits |= static_cast<u32>(readByte(reg, row, col * 4 + b)) << (8 * b);
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

void
TileRegisterFile::writeF32(TileReg reg, u32 row, u32 col, float value)
{
    u32 bits;
    std::memcpy(&bits, &value, sizeof(bits));
    for (u32 b = 0; b < 4; ++b)
        writeByte(reg, row, col * 4 + b,
                  static_cast<u8>((bits >> (8 * b)) & 0xff));
}

float
TileRegisterFile::readF32Linear(TileReg reg, u32 element) const
{
    u32 bits = 0;
    for (u32 b = 0; b < 4; ++b)
        bits |= static_cast<u32>(readLinearByte(reg, element * 4 + b))
                << (8 * b);
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

void
TileRegisterFile::writeF32Linear(TileReg reg, u32 element, float value)
{
    u32 bits;
    std::memcpy(&bits, &value, sizeof(bits));
    for (u32 b = 0; b < 4; ++b)
        writeLinearByte(reg, element * 4 + b,
                        static_cast<u8>((bits >> (8 * b)) & 0xff));
}

std::vector<u8>
TileRegisterFile::readAll(TileReg reg) const
{
    std::vector<u8> bytes(regClassBytes(reg.cls));
    for (u32 i = 0; i < bytes.size(); ++i)
        bytes[i] = readLinearByte(reg, i);
    return bytes;
}

void
TileRegisterFile::writeAll(TileReg reg, const std::vector<u8> &bytes)
{
    VEGETA_ASSERT(bytes.size() == regClassBytes(reg.cls),
                  "byte image size mismatch: ", bytes.size(), " vs ",
                  regClassBytes(reg.cls));
    for (u32 i = 0; i < bytes.size(); ++i)
        writeLinearByte(reg, i, bytes[i]);
}

MetadataReg &
MetadataRegisterFile::reg(u32 i)
{
    VEGETA_ASSERT(i < kNumMregs, "mreg index out of range: ", i);
    return mregs_[i];
}

const MetadataReg &
MetadataRegisterFile::reg(u32 i) const
{
    VEGETA_ASSERT(i < kNumMregs, "mreg index out of range: ", i);
    return mregs_[i];
}

} // namespace vegeta::isa
