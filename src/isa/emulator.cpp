#include "isa/emulator.hpp"

namespace vegeta::isa {

void
Emulator::execute(const Instruction &in)
{
    ++counts_[static_cast<std::size_t>(in.op)];
    switch (in.op) {
      case Opcode::TileLoadT:
      case Opcode::TileLoadU:
      case Opcode::TileLoadV:
        execLoad(in);
        break;
      case Opcode::TileLoadM:
        execLoadMetadata(in);
        break;
      case Opcode::TileStoreT:
        execStore(in);
        break;
      case Opcode::TileGemm:
        execGemm(in);
        break;
      case Opcode::TileSpmmU:
        execSpmmU(in);
        break;
      case Opcode::TileSpmmV:
        execSpmmV(in);
        break;
      case Opcode::TileSpmmR:
        execSpmmR(in);
        break;
    }
}

u64
Emulator::executed(Opcode op) const
{
    return counts_[static_cast<std::size_t>(op)];
}

u64
Emulator::totalExecuted() const
{
    u64 total = 0;
    for (u64 c : counts_)
        total += c;
    return total;
}

void
Emulator::execLoad(const Instruction &in)
{
    const u32 row_bytes = regClassRowBytes(in.dst.cls);
    for (u32 r = 0; r < kTregRows; ++r)
        for (u32 b = 0; b < row_bytes; ++b)
            tiles_.writeByte(in.dst, r, b,
                             mem_.readByte(in.addr +
                                           std::size_t{r} * in.stride + b));
}

void
Emulator::execLoadMetadata(const Instruction &in)
{
    MetadataReg &m = metadata_.reg(in.mreg);
    for (u32 b = 0; b < kMregBytes; ++b)
        m.body[b] = mem_.readByte(in.addr + b);
    for (u32 b = 0; b < kMregDescBytes; ++b)
        m.rowDesc[b] = mem_.readByte(in.addr + kMregBytes + b);
}

void
Emulator::execStore(const Instruction &in)
{
    for (u32 r = 0; r < kTregRows; ++r)
        for (u32 b = 0; b < kTregRowBytes; ++b)
            mem_.writeByte(in.addr + std::size_t{r} * in.stride + b,
                           tiles_.readByte(in.dst, r, b));
}

void
Emulator::execGemm(const Instruction &in)
{
    // C (16x16, FP32) += A (16x32, BF16) x B (32x16, BF16); B is held
    // transposed in the register, so Bt(j, k) = B(k, j).
    for (u32 i = 0; i < 16; ++i) {
        for (u32 j = 0; j < 16; ++j) {
            float acc = tiles_.readF32(in.dst, i, j);
            for (u32 k = 0; k < 32; ++k)
                acc = macBF16(acc, tiles_.readBF16(in.srcA, i, k),
                              tiles_.readBF16(in.srcB, j, k));
            tiles_.writeF32(in.dst, i, j, acc);
        }
    }
}

void
Emulator::execSpmmU(const Instruction &in)
{
    // C (16x16) += A (16x64 effective, 2:4 compressed in a treg) x
    // B (64x16, transposed in a ureg).  Stored value v of row i lives
    // in block v/2; its in-block position comes from the paired mreg.
    const MetadataReg &md = metadata_.reg(in.mreg);
    for (u32 i = 0; i < 16; ++i) {
        for (u32 j = 0; j < 16; ++j) {
            float acc = tiles_.readF32(in.dst, i, j);
            for (u32 v = 0; v < 32; ++v) {
                const u32 block = v / 2;
                const u32 pos = md.code(i * 32 + v);
                const u32 k = block * kBlockSize + pos;
                acc = macBF16(acc, tiles_.readBF16(in.srcA, i, v),
                              tiles_.readBF16(in.srcB, j, k));
            }
            tiles_.writeF32(in.dst, i, j, acc);
        }
    }
}

void
Emulator::execSpmmV(const Instruction &in)
{
    // C (16x16) += A (16x128 effective, 1:4 compressed) x B (128x16,
    // transposed in a vreg).  Stored value v is the only non-zero of
    // block v.
    const MetadataReg &md = metadata_.reg(in.mreg);
    for (u32 i = 0; i < 16; ++i) {
        for (u32 j = 0; j < 16; ++j) {
            float acc = tiles_.readF32(in.dst, i, j);
            for (u32 v = 0; v < 32; ++v) {
                const u32 pos = md.code(i * 32 + v);
                const u32 k = v * kBlockSize + pos;
                acc = macBF16(acc, tiles_.readBF16(in.srcA, i, v),
                              tiles_.readBF16(in.srcB, j, k));
            }
            tiles_.writeF32(in.dst, i, j, acc);
        }
    }
}

void
Emulator::execSpmmR(const Instruction &in)
{
    // C (R x 16, FP32, linear in a ureg) += A (R x 64 effective,
    // row-wise N:4 compressed, values packed linearly in a treg) x
    // B (64x16, transposed in a ureg).  Per-row N comes from the mreg
    // row-descriptor extension; in-block positions from the mreg body
    // read as a linear 2-bit stream.
    const MetadataReg &md = metadata_.reg(in.mreg);
    const u32 blocks = 64 / kBlockSize; // 16 blocks per effective row

    u32 cursor = 0; // linear index into values and metadata codes
    for (u32 r = 0; r < in.rows; ++r) {
        const u32 n = RowWiseCompressedTile::decodeRowN(md.rowDescCode(r));
        const u32 row_values = n * blocks;
        VEGETA_ASSERT(cursor + row_values <= kTregBytes / 2,
                      "TILE_SPMM_R stream overflows the A treg at row ",
                      r);
        for (u32 j = 0; j < 16; ++j) {
            float acc = tiles_.readF32Linear(in.dst, r * 16 + j);
            for (u32 b = 0; b < blocks; ++b) {
                for (u32 v = 0; v < n; ++v) {
                    const u32 linear = cursor + b * n + v;
                    const u32 pos = md.code(linear);
                    const u32 k = b * kBlockSize + pos;
                    const BF16 a = tiles_.readBF16(in.srcA, linear / 32,
                                                   linear % 32);
                    acc = macBF16(acc, a, tiles_.readBF16(in.srcB, j, k));
                }
            }
            tiles_.writeF32Linear(in.dst, r * 16 + j, acc);
        }
        cursor += row_values;
    }
}

void
Emulator::writeTileBF16(TileReg reg, const MatrixBF16 &mat)
{
    VEGETA_ASSERT(mat.rows() <= kTregRows &&
                      mat.cols() * 2 <= regClassRowBytes(reg.cls),
                  "matrix ", mat.rows(), "x", mat.cols(),
                  " does not fit in ", reg.toString());
    for (u32 r = 0; r < mat.rows(); ++r)
        for (u32 c = 0; c < mat.cols(); ++c)
            tiles_.writeBF16(reg, r, c, mat.at(r, c));
}

MatrixBF16
Emulator::readTileBF16(TileReg reg, u32 rows, u32 cols) const
{
    MatrixBF16 mat(rows, cols);
    for (u32 r = 0; r < rows; ++r)
        for (u32 c = 0; c < cols; ++c)
            mat.at(r, c) = tiles_.readBF16(reg, r, c);
    return mat;
}

void
Emulator::writeTileF32(TileReg reg, const MatrixF &mat)
{
    VEGETA_ASSERT(mat.rows() <= kTregRows &&
                      mat.cols() * 4 <= regClassRowBytes(reg.cls),
                  "matrix does not fit in ", reg.toString());
    for (u32 r = 0; r < mat.rows(); ++r)
        for (u32 c = 0; c < mat.cols(); ++c)
            tiles_.writeF32(reg, r, c, mat.at(r, c));
}

MatrixF
Emulator::readTileF32(TileReg reg, u32 rows, u32 cols) const
{
    MatrixF mat(rows, cols);
    for (u32 r = 0; r < rows; ++r)
        for (u32 c = 0; c < cols; ++c)
            mat.at(r, c) = tiles_.readF32(reg, r, c);
    return mat;
}

MatrixF
Emulator::readTileF32Linear(TileReg reg, u32 rows, u32 cols) const
{
    MatrixF mat(rows, cols);
    for (u32 r = 0; r < rows; ++r)
        for (u32 c = 0; c < cols; ++c)
            mat.at(r, c) = tiles_.readF32Linear(reg, r * cols + c);
    return mat;
}

void
Emulator::writeTileF32Linear(TileReg reg, const MatrixF &mat)
{
    for (u32 r = 0; r < mat.rows(); ++r)
        for (u32 c = 0; c < mat.cols(); ++c)
            tiles_.writeF32Linear(reg, r * mat.cols() + c, mat.at(r, c));
}

void
Emulator::setMetadata(u32 mreg_index, const std::vector<u8> &body,
                      const std::vector<u8> &row_desc)
{
    MetadataReg &m = metadata_.reg(mreg_index);
    m = MetadataReg{};
    VEGETA_ASSERT(body.size() <= kMregBytes, "metadata body too large");
    VEGETA_ASSERT(row_desc.size() <= kMregDescBytes,
                  "row descriptors too large");
    std::copy(body.begin(), body.end(), m.body.begin());
    std::copy(row_desc.begin(), row_desc.end(), m.rowDesc.begin());
}

} // namespace vegeta::isa
