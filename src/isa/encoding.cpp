#include "isa/encoding.hpp"

#include "common/logging.hpp"

namespace vegeta::isa {

namespace {

constexpr u32 kOpcodeShift = 0;
constexpr u32 kDstIdxShift = 4;
constexpr u32 kDstClsShift = 7;
constexpr u32 kSrcAIdxShift = 9;
constexpr u32 kSrcAClsShift = 12;
constexpr u32 kSrcBIdxShift = 14;
constexpr u32 kSrcBClsShift = 17;
constexpr u32 kMregShift = 19;
constexpr u32 kRowsShift = 22;
constexpr u32 kStrideShift = 28;
constexpr u64 kStrideMask = (1ull << 24) - 1;
constexpr u32 kOpcodeCount = 9;

u64
packReg(TileReg reg, u32 idx_shift, u32 cls_shift)
{
    return (static_cast<u64>(reg.index) << idx_shift) |
           (static_cast<u64>(reg.cls) << cls_shift);
}

std::optional<TileReg>
unpackReg(u64 word, u32 idx_shift, u32 cls_shift)
{
    const u32 cls_bits = static_cast<u32>((word >> cls_shift) & 0x3);
    if (cls_bits > 2)
        return std::nullopt;
    TileReg reg;
    reg.cls = static_cast<RegClass>(cls_bits);
    reg.index = static_cast<u8>((word >> idx_shift) & 0x7);
    if (reg.index >= regClassCount(reg.cls))
        return std::nullopt;
    return reg;
}

} // namespace

EncodedInstruction
encode(const Instruction &instr)
{
    VEGETA_ASSERT(instr.stride <= kStrideMask, "stride too large: ",
                  instr.stride);
    EncodedInstruction enc;
    enc.word = static_cast<u64>(instr.op) << kOpcodeShift;
    enc.word |= packReg(instr.dst, kDstIdxShift, kDstClsShift);
    enc.word |= packReg(instr.srcA, kSrcAIdxShift, kSrcAClsShift);
    enc.word |= packReg(instr.srcB, kSrcBIdxShift, kSrcBClsShift);
    enc.word |= static_cast<u64>(instr.mreg & 0x7) << kMregShift;
    enc.word |= static_cast<u64>(instr.rows & 0x3f) << kRowsShift;
    enc.word |= (static_cast<u64>(instr.stride) & kStrideMask)
                << kStrideShift;
    enc.addr = instr.addr;
    return enc;
}

std::optional<Instruction>
decode(const EncodedInstruction &enc)
{
    const u32 op_bits = static_cast<u32>((enc.word >> kOpcodeShift) & 0xf);
    if (op_bits >= kOpcodeCount)
        return std::nullopt;
    if (enc.word >> 52)
        return std::nullopt; // reserved bits set

    Instruction instr;
    instr.op = static_cast<Opcode>(op_bits);
    auto dst = unpackReg(enc.word, kDstIdxShift, kDstClsShift);
    auto src_a = unpackReg(enc.word, kSrcAIdxShift, kSrcAClsShift);
    auto src_b = unpackReg(enc.word, kSrcBIdxShift, kSrcBClsShift);
    if (!dst || !src_a || !src_b)
        return std::nullopt;
    instr.dst = *dst;
    instr.srcA = *src_a;
    instr.srcB = *src_b;
    instr.mreg = static_cast<u8>((enc.word >> kMregShift) & 0x7);
    instr.rows = static_cast<u8>((enc.word >> kRowsShift) & 0x3f);
    instr.stride =
        static_cast<u32>((enc.word >> kStrideShift) & kStrideMask);
    instr.addr = enc.addr;

    // Class constraints per opcode (Table II).
    auto require = [&](bool ok) { return ok; };
    bool ok = true;
    switch (instr.op) {
      case Opcode::TileLoadT:
        ok = require(instr.dst.cls == RegClass::Treg);
        break;
      case Opcode::TileLoadU:
        ok = require(instr.dst.cls == RegClass::Ureg);
        break;
      case Opcode::TileLoadV:
        ok = require(instr.dst.cls == RegClass::Vreg);
        break;
      case Opcode::TileLoadM:
        ok = true;
        break;
      case Opcode::TileStoreT:
        ok = require(instr.dst.cls == RegClass::Treg);
        break;
      case Opcode::TileGemm:
        ok = require(instr.dst.cls == RegClass::Treg &&
                     instr.srcA.cls == RegClass::Treg &&
                     instr.srcB.cls == RegClass::Treg);
        break;
      case Opcode::TileSpmmU:
        ok = require(instr.dst.cls == RegClass::Treg &&
                     instr.srcA.cls == RegClass::Treg &&
                     instr.srcB.cls == RegClass::Ureg);
        break;
      case Opcode::TileSpmmV:
        ok = require(instr.dst.cls == RegClass::Treg &&
                     instr.srcA.cls == RegClass::Treg &&
                     instr.srcB.cls == RegClass::Vreg);
        break;
      case Opcode::TileSpmmR:
        ok = require(instr.dst.cls == RegClass::Ureg &&
                     instr.srcA.cls == RegClass::Treg &&
                     instr.srcB.cls == RegClass::Ureg &&
                     instr.rows >= 1 && instr.rows <= 32);
        break;
    }
    if (!ok)
        return std::nullopt;
    return instr;
}

std::vector<EncodedInstruction>
encodeStream(const std::vector<Instruction> &instrs)
{
    std::vector<EncodedInstruction> out;
    out.reserve(instrs.size());
    for (const auto &instr : instrs)
        out.push_back(encode(instr));
    return out;
}

std::optional<std::vector<Instruction>>
decodeStream(const std::vector<EncodedInstruction> &words)
{
    std::vector<Instruction> out;
    out.reserve(words.size());
    for (const auto &enc : words) {
        auto instr = decode(enc);
        if (!instr)
            return std::nullopt;
        out.push_back(*instr);
    }
    return out;
}

} // namespace vegeta::isa
