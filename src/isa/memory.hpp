/**
 * @file
 * Flat byte-addressable memory backing the functional emulator.
 *
 * A sparse page map keeps the footprint proportional to the touched
 * data.  Helper store/load routines lay matrices and compressed tiles
 * out in memory the way the VEGETA kernels expect (row-major with a
 * configurable stride; B tiles stored transposed per Listing 1).
 */

#ifndef VEGETA_ISA_MEMORY_HPP
#define VEGETA_ISA_MEMORY_HPP

#include <array>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "isa/registers.hpp"
#include "numerics/matrix.hpp"
#include "sparsity/compressed_tile.hpp"

namespace vegeta::isa {

/** Sparse flat memory. */
class FlatMemory
{
  public:
    static constexpr u32 kPageBytes = 4096;

    u8 readByte(Addr addr) const;
    void writeByte(Addr addr, u8 value);

    void readBytes(Addr addr, u8 *out, std::size_t count) const;
    void writeBytes(Addr addr, const u8 *in, std::size_t count);

    std::vector<u8> read(Addr addr, std::size_t count) const;
    void write(Addr addr, const std::vector<u8> &bytes);

    /** Number of resident pages (for footprint checks in tests). */
    std::size_t residentPages() const { return pages_.size(); }

    void clear() { pages_.clear(); }

  private:
    using Page = std::array<u8, kPageBytes>;
    std::unordered_map<u64, Page> pages_;
};

/**
 * Store a BF16 matrix row-major at addr with the given row stride in
 * bytes (stride >= cols * 2).  Returns the byte footprint.
 */
std::size_t storeMatrixBF16(FlatMemory &mem, Addr addr,
                            const MatrixBF16 &mat, u32 stride_bytes);

/** Load a rows x cols BF16 matrix stored with a row stride. */
MatrixBF16 loadMatrixBF16(const FlatMemory &mem, Addr addr, u32 rows,
                          u32 cols, u32 stride_bytes);

/** Store / load an FP32 matrix (C tiles). */
std::size_t storeMatrixF32(FlatMemory &mem, Addr addr, const MatrixF &mat,
                           u32 stride_bytes);
MatrixF loadMatrixF32(const FlatMemory &mem, Addr addr, u32 rows, u32 cols,
                      u32 stride_bytes);

/**
 * Store a compressed tile's metadata image (128 B body, zero padded)
 * followed by the 8 B row-descriptor extension at addr, the layout
 * TILE_LOAD_M expects.
 */
void storeMetadata(FlatMemory &mem, Addr addr, const std::vector<u8> &body,
                   const std::vector<u8> &row_desc = {});

} // namespace vegeta::isa

#endif // VEGETA_ISA_MEMORY_HPP
