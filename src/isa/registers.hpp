/**
 * @file
 * VEGETA architectural register file (paper Section IV-A, Figure 6).
 *
 * Eight 1 KB tile registers treg0-7, each 16 rows x 64 B.  Aliased on
 * top of them: four 2 KB utile registers (ureg k = treg 2k ++ treg 2k+1,
 * row-wise) and two 4 KB vtile registers (vreg k = treg 4k .. treg 4k+3).
 * Eight 128 B metadata registers mreg0-7 hold 2-bit non-zero position
 * indices (16 rows x 64 bits) plus an 8 B row-descriptor extension used
 * by TILE_SPMM_R (per-row N codes, "32x2 bits, or 8 B, at most").
 */

#ifndef VEGETA_ISA_REGISTERS_HPP
#define VEGETA_ISA_REGISTERS_HPP

#include <array>
#include <vector>

#include "common/logging.hpp"
#include "common/types.hpp"
#include "numerics/bf16.hpp"

namespace vegeta::isa {

inline constexpr u32 kNumTregs = 8;
inline constexpr u32 kNumUregs = 4;
inline constexpr u32 kNumVregs = 2;
inline constexpr u32 kNumMregs = 8;

inline constexpr u32 kTregRows = 16;
inline constexpr u32 kTregRowBytes = 64;
inline constexpr u32 kTregBytes = kTregRows * kTregRowBytes; // 1 KB
inline constexpr u32 kUregBytes = 2 * kTregBytes;            // 2 KB
inline constexpr u32 kVregBytes = 4 * kTregBytes;            // 4 KB

inline constexpr u32 kMregBytes = 128;    // 16 rows x 64 bits
inline constexpr u32 kMregDescBytes = 8;  // row-descriptor extension

/** Register class of a tile operand. */
enum class RegClass : u8
{
    Treg, ///< 1 KB, 16 x 64 B rows
    Ureg, ///< 2 KB, 16 x 128 B rows (two consecutive tregs)
    Vreg, ///< 4 KB, 16 x 256 B rows (four consecutive tregs)
};

/** Number of tregs backing one register of the class. */
constexpr u32
regClassTregs(RegClass cls)
{
    switch (cls) {
      case RegClass::Treg:
        return 1;
      case RegClass::Ureg:
        return 2;
      case RegClass::Vreg:
        return 4;
    }
    return 1;
}

/** Architectural register count of the class. */
constexpr u32
regClassCount(RegClass cls)
{
    return kNumTregs / regClassTregs(cls);
}

/** Bytes per logical row of the class (64 / 128 / 256). */
constexpr u32
regClassRowBytes(RegClass cls)
{
    return kTregRowBytes * regClassTregs(cls);
}

/** Total bytes of one register of the class. */
constexpr u32
regClassBytes(RegClass cls)
{
    return kTregBytes * regClassTregs(cls);
}

const char *regClassName(RegClass cls);

/** A (class, index) tile-register operand. */
struct TileReg
{
    RegClass cls = RegClass::Treg;
    u8 index = 0;

    bool operator==(const TileReg &) const = default;

    /** First backing treg. */
    u32 firstTreg() const { return index * regClassTregs(cls); }
    /** Backing treg ids [first, first + count). */
    u32 numTregs() const { return regClassTregs(cls); }

    std::string toString() const;
};

inline TileReg
treg(u8 i)
{
    return {RegClass::Treg, i};
}

inline TileReg
ureg(u8 i)
{
    return {RegClass::Ureg, i};
}

inline TileReg
vreg(u8 i)
{
    return {RegClass::Vreg, i};
}

/**
 * The tile register file: one 8 KB backing store with aliased views.
 *
 * Logical row r of ureg k is the concatenation of row r of treg 2k and
 * row r of treg 2k+1 (and likewise 4-wide for vregs), so a ureg is
 * naturally a 16 x 64 BF16 tile and a vreg a 16 x 128 BF16 tile.
 */
class TileRegisterFile
{
  public:
    TileRegisterFile() { backing_.fill(0); }

    /** Raw byte of a logical (row, byte-in-row) position. */
    u8 readByte(TileReg reg, u32 row, u32 byte_in_row) const;
    void writeByte(TileReg reg, u32 row, u32 byte_in_row, u8 value);

    /** Linear byte offset within the register (row-major logical rows). */
    u8 readLinearByte(TileReg reg, u32 offset) const;
    void writeLinearByte(TileReg reg, u32 offset, u8 value);

    /** BF16 element (row, col) with col < rowBytes/2. */
    BF16 readBF16(TileReg reg, u32 row, u32 col) const;
    void writeBF16(TileReg reg, u32 row, u32 col, BF16 value);

    /** FP32 element (row, col) with col < rowBytes/4. */
    float readF32(TileReg reg, u32 row, u32 col) const;
    void writeF32(TileReg reg, u32 row, u32 col, float value);

    /** FP32 element at a linear element index (for R x 16 ureg tiles). */
    float readF32Linear(TileReg reg, u32 element) const;
    void writeF32Linear(TileReg reg, u32 element, float value);

    /** Whole-register byte image (logical row order). */
    std::vector<u8> readAll(TileReg reg) const;
    void writeAll(TileReg reg, const std::vector<u8> &bytes);

    void clear() { backing_.fill(0); }

  private:
    /** Map a logical (reg, row, byte) to an offset in the backing. */
    std::size_t flatten(TileReg reg, u32 row, u32 byte_in_row) const;

    std::array<u8, kNumTregs * kTregBytes> backing_;
};

/** One metadata register: 128 B body + 8 B row-descriptor extension. */
struct MetadataReg
{
    std::array<u8, kMregBytes> body{};
    std::array<u8, kMregDescBytes> rowDesc{};

    /** 2-bit index code i of the register body. */
    u32
    code(u32 i) const
    {
        VEGETA_ASSERT(i < kMregBytes * 4, "metadata code out of range");
        return (body[i / 4] >> (2 * (i % 4))) & 0x3u;
    }

    void
    setCode(u32 i, u32 value)
    {
        VEGETA_ASSERT(i < kMregBytes * 4 && value < 4, "bad metadata code");
        u8 &byte = body[i / 4];
        byte = static_cast<u8>((byte & ~(0x3u << (2 * (i % 4)))) |
                               (value << (2 * (i % 4))));
    }

    /** 2-bit row-descriptor code for row r (TILE_SPMM_R). */
    u32
    rowDescCode(u32 r) const
    {
        VEGETA_ASSERT(r < kMregDescBytes * 4, "row descriptor out of range");
        return (rowDesc[r / 4] >> (2 * (r % 4))) & 0x3u;
    }
};

/** The eight metadata registers. */
class MetadataRegisterFile
{
  public:
    MetadataReg &reg(u32 i);
    const MetadataReg &reg(u32 i) const;

    void
    clear()
    {
        for (auto &m : mregs_)
            m = MetadataReg{};
    }

  private:
    std::array<MetadataReg, kNumMregs> mregs_{};
};

} // namespace vegeta::isa

#endif // VEGETA_ISA_REGISTERS_HPP
