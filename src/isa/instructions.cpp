#include "isa/instructions.hpp"

#include <sstream>

namespace vegeta::isa {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::TileLoadT:
        return "TILE_LOAD_T";
      case Opcode::TileLoadU:
        return "TILE_LOAD_U";
      case Opcode::TileLoadV:
        return "TILE_LOAD_V";
      case Opcode::TileLoadM:
        return "TILE_LOAD_M";
      case Opcode::TileStoreT:
        return "TILE_STORE_T";
      case Opcode::TileGemm:
        return "TILE_GEMM";
      case Opcode::TileSpmmU:
        return "TILE_SPMM_U";
      case Opcode::TileSpmmV:
        return "TILE_SPMM_V";
      case Opcode::TileSpmmR:
        return "TILE_SPMM_R";
    }
    return "?";
}

bool
isTileCompute(Opcode op)
{
    return op == Opcode::TileGemm || op == Opcode::TileSpmmU ||
           op == Opcode::TileSpmmV || op == Opcode::TileSpmmR;
}

bool
isTileLoad(Opcode op)
{
    return op == Opcode::TileLoadT || op == Opcode::TileLoadU ||
           op == Opcode::TileLoadV || op == Opcode::TileLoadM;
}

bool
isTileStore(Opcode op)
{
    return op == Opcode::TileStoreT;
}

ComputeShape
computeShape(Opcode op)
{
    switch (op) {
      case Opcode::TileGemm:
        return {16, 16, 32};
      case Opcode::TileSpmmU:
        return {16, 16, 64};
      case Opcode::TileSpmmV:
        return {16, 16, 128};
      case Opcode::TileSpmmR:
        // R varies per instance (8..32); k = 64.  m reported as the max.
        return {32, 16, 64};
      default:
        VEGETA_PANIC("computeShape of non-compute opcode ",
                     opcodeName(op));
    }
}

u64
effectualMacs(Opcode op)
{
    switch (op) {
      case Opcode::TileGemm:
      case Opcode::TileSpmmU:
      case Opcode::TileSpmmV:
        // 16x16 outputs x 32 effectual MACs per output (Section IV-B).
        return 16ull * 16 * 32;
      case Opcode::TileSpmmR:
        // R x 16 outputs, 512 stored values x 16 B columns total.
        return 512ull * 16;
      default:
        return 0;
    }
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opcodeName(op) << " ";
    switch (op) {
      case Opcode::TileLoadT:
      case Opcode::TileLoadU:
      case Opcode::TileLoadV:
        os << dst.toString() << ", [0x" << std::hex << addr << std::dec
           << " +" << stride << "]";
        break;
      case Opcode::TileLoadM:
        os << "mreg" << static_cast<int>(mreg) << ", [0x" << std::hex
           << addr << std::dec << "]";
        break;
      case Opcode::TileStoreT:
        os << "[0x" << std::hex << addr << std::dec << " +" << stride
           << "], " << dst.toString();
        break;
      case Opcode::TileGemm:
      case Opcode::TileSpmmU:
      case Opcode::TileSpmmV:
        os << dst.toString() << ", " << srcA.toString() << ", "
           << srcB.toString();
        break;
      case Opcode::TileSpmmR:
        os << dst.toString() << ", " << srcA.toString() << ", "
           << srcB.toString() << ", rows=" << static_cast<int>(rows);
        break;
    }
    return os.str();
}

namespace {

void
appendTileRegs(RegList &out, TileReg reg)
{
    // Malformed instructions (hand-built out-of-range indices) must
    // not reach the schedulers' fixed dep-id tables.
    VEGETA_ASSERT(reg.firstTreg() + reg.numTregs() <= kNumTregs,
                  "tile register index out of range");
    for (u32 i = 0; i < reg.numTregs(); ++i)
        out.push(reg.firstTreg() + i);
}

u32
checkedMregDepId(u32 mreg_index)
{
    VEGETA_ASSERT(mreg_index < kNumMregs,
                  "mreg index out of range");
    return mregDepId(mreg_index);
}

std::vector<u32>
toVector(const RegList &list)
{
    return {list.begin(), list.end()};
}

} // namespace

RegList
Instruction::readRegList() const
{
    RegList regs;
    switch (op) {
      case Opcode::TileLoadT:
      case Opcode::TileLoadU:
      case Opcode::TileLoadV:
      case Opcode::TileLoadM:
        break;
      case Opcode::TileStoreT:
        appendTileRegs(regs, dst);
        break;
      case Opcode::TileGemm:
        appendTileRegs(regs, dst); // accumulate: C is read too
        appendTileRegs(regs, srcA);
        appendTileRegs(regs, srcB);
        break;
      case Opcode::TileSpmmU:
      case Opcode::TileSpmmV:
      case Opcode::TileSpmmR:
        appendTileRegs(regs, dst);
        appendTileRegs(regs, srcA);
        appendTileRegs(regs, srcB);
        regs.push(checkedMregDepId(srcA.firstTreg()));
        break;
    }
    return regs;
}

RegList
Instruction::writeRegList() const
{
    RegList regs;
    switch (op) {
      case Opcode::TileLoadT:
      case Opcode::TileLoadU:
      case Opcode::TileLoadV:
        appendTileRegs(regs, dst);
        break;
      case Opcode::TileLoadM:
        regs.push(checkedMregDepId(mreg));
        break;
      case Opcode::TileStoreT:
        break;
      case Opcode::TileGemm:
      case Opcode::TileSpmmU:
      case Opcode::TileSpmmV:
      case Opcode::TileSpmmR:
        appendTileRegs(regs, dst);
        break;
    }
    return regs;
}

RegList
Instruction::accumulateRegList() const
{
    RegList regs;
    if (isTileCompute(op))
        appendTileRegs(regs, dst);
    return regs;
}

std::vector<u32>
Instruction::readRegs() const
{
    return toVector(readRegList());
}

std::vector<u32>
Instruction::writeRegs() const
{
    return toVector(writeRegList());
}

std::vector<u32>
Instruction::accumulateRegs() const
{
    return toVector(accumulateRegList());
}

Instruction
makeTileLoadT(TileReg dst, Addr addr, u32 stride)
{
    VEGETA_ASSERT(dst.cls == RegClass::Treg, "TILE_LOAD_T needs a treg");
    Instruction in;
    in.op = Opcode::TileLoadT;
    in.dst = dst;
    in.addr = addr;
    in.stride = stride;
    return in;
}

Instruction
makeTileLoadU(TileReg dst, Addr addr, u32 stride)
{
    VEGETA_ASSERT(dst.cls == RegClass::Ureg, "TILE_LOAD_U needs a ureg");
    Instruction in;
    in.op = Opcode::TileLoadU;
    in.dst = dst;
    in.addr = addr;
    in.stride = stride;
    return in;
}

Instruction
makeTileLoadV(TileReg dst, Addr addr, u32 stride)
{
    VEGETA_ASSERT(dst.cls == RegClass::Vreg, "TILE_LOAD_V needs a vreg");
    Instruction in;
    in.op = Opcode::TileLoadV;
    in.dst = dst;
    in.addr = addr;
    in.stride = stride;
    return in;
}

Instruction
makeTileLoadM(u8 mreg, Addr addr)
{
    VEGETA_ASSERT(mreg < kNumMregs, "mreg index out of range");
    Instruction in;
    in.op = Opcode::TileLoadM;
    in.mreg = mreg;
    in.addr = addr;
    in.stride = kMregBytes + kMregDescBytes;
    return in;
}

Instruction
makeTileStoreT(Addr addr, u32 stride, TileReg src)
{
    VEGETA_ASSERT(src.cls == RegClass::Treg, "TILE_STORE_T needs a treg");
    Instruction in;
    in.op = Opcode::TileStoreT;
    in.dst = src;
    in.addr = addr;
    in.stride = stride;
    return in;
}

Instruction
makeTileGemm(TileReg dst, TileReg a, TileReg b)
{
    VEGETA_ASSERT(dst.cls == RegClass::Treg && a.cls == RegClass::Treg &&
                      b.cls == RegClass::Treg,
                  "TILE_GEMM operands must all be tregs");
    Instruction in;
    in.op = Opcode::TileGemm;
    in.dst = dst;
    in.srcA = a;
    in.srcB = b;
    return in;
}

Instruction
makeTileSpmmU(TileReg dst, TileReg a, TileReg b)
{
    VEGETA_ASSERT(dst.cls == RegClass::Treg && a.cls == RegClass::Treg &&
                      b.cls == RegClass::Ureg,
                  "TILE_SPMM_U operands must be treg, treg, ureg");
    Instruction in;
    in.op = Opcode::TileSpmmU;
    in.dst = dst;
    in.srcA = a;
    in.srcB = b;
    in.mreg = a.index;
    return in;
}

Instruction
makeTileSpmmV(TileReg dst, TileReg a, TileReg b)
{
    VEGETA_ASSERT(dst.cls == RegClass::Treg && a.cls == RegClass::Treg &&
                      b.cls == RegClass::Vreg,
                  "TILE_SPMM_V operands must be treg, treg, vreg");
    Instruction in;
    in.op = Opcode::TileSpmmV;
    in.dst = dst;
    in.srcA = a;
    in.srcB = b;
    in.mreg = a.index;
    return in;
}

Instruction
makeTileSpmmR(TileReg dst, TileReg a, TileReg b, u8 rows)
{
    VEGETA_ASSERT(dst.cls == RegClass::Ureg && a.cls == RegClass::Treg &&
                      b.cls == RegClass::Ureg,
                  "TILE_SPMM_R operands must be ureg, treg, ureg");
    VEGETA_ASSERT(rows >= 1 && rows <= 32, "TILE_SPMM_R rows must be 1..32");
    Instruction in;
    in.op = Opcode::TileSpmmR;
    in.dst = dst;
    in.srcA = a;
    in.srcB = b;
    in.mreg = a.index;
    in.rows = rows;
    return in;
}

} // namespace vegeta::isa
