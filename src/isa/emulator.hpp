/**
 * @file
 * Functional emulator for the VEGETA ISA.
 *
 * Plays the role of the paper's Pin-based instrumentation tool
 * (Section VI-A): it executes each VEGETA instruction architecturally
 * (bit-exact BF16 inputs, FP32 accumulation in ascending-k order) over
 * a register file and flat memory, and counts executed instructions.
 * Kernels run on the emulator both to verify numerics and to generate
 * dynamic traces for the cycle-level CPU model.
 */

#ifndef VEGETA_ISA_EMULATOR_HPP
#define VEGETA_ISA_EMULATOR_HPP

#include <array>

#include "isa/instructions.hpp"
#include "isa/memory.hpp"
#include "isa/registers.hpp"
#include "numerics/matrix.hpp"

namespace vegeta::isa {

/** Architectural state + instruction semantics. */
class Emulator
{
  public:
    explicit Emulator(FlatMemory &memory) : mem_(memory) {}

    /** Execute one instruction architecturally. */
    void execute(const Instruction &in);

    TileRegisterFile &tiles() { return tiles_; }
    const TileRegisterFile &tiles() const { return tiles_; }
    MetadataRegisterFile &metadata() { return metadata_; }
    const MetadataRegisterFile &metadata() const { return metadata_; }
    FlatMemory &memory() { return mem_; }

    /** Executed-instruction count per opcode. */
    u64 executed(Opcode op) const;
    u64 totalExecuted() const;
    void resetCounts() { counts_.fill(0); }

    // --- Test / driver conveniences -----------------------------------

    /** Write a BF16 matrix into a tile register (row-major elements). */
    void writeTileBF16(TileReg reg, const MatrixBF16 &mat);
    /** Read a rows x cols BF16 matrix from a tile register. */
    MatrixBF16 readTileBF16(TileReg reg, u32 rows, u32 cols) const;

    /** Write / read an FP32 matrix (C tiles). */
    void writeTileF32(TileReg reg, const MatrixF &mat);
    MatrixF readTileF32(TileReg reg, u32 rows, u32 cols) const;

    /** Read an R x 16 FP32 tile laid out linearly (TILE_SPMM_R's C). */
    MatrixF readTileF32Linear(TileReg reg, u32 rows, u32 cols) const;
    void writeTileF32Linear(TileReg reg, const MatrixF &mat);

    /** Load an mreg directly from packed metadata bytes. */
    void setMetadata(u32 mreg_index, const std::vector<u8> &body,
                     const std::vector<u8> &row_desc = {});

  private:
    void execLoad(const Instruction &in);
    void execLoadMetadata(const Instruction &in);
    void execStore(const Instruction &in);
    void execGemm(const Instruction &in);
    void execSpmmU(const Instruction &in);
    void execSpmmV(const Instruction &in);
    void execSpmmR(const Instruction &in);

    FlatMemory &mem_;
    TileRegisterFile tiles_;
    MetadataRegisterFile metadata_;
    std::array<u64, 9> counts_{};
};

} // namespace vegeta::isa

#endif // VEGETA_ISA_EMULATOR_HPP
