/**
 * @file
 * VEGETA instruction definitions (paper Table II).
 *
 * TILE_LOAD_T/U/V  - load 1/2/4 KB tile (strided rows) into treg/ureg/vreg
 * TILE_LOAD_M      - load 128 B (+ 8 B row descriptors) into an mreg
 * TILE_STORE_T     - store a 1 KB tile from a treg
 * TILE_GEMM        - C (treg) += A (dense treg) x B (treg, transposed)
 * TILE_SPMM_U      - C (treg) += A (2:4 treg + mreg) x B (ureg, transposed)
 * TILE_SPMM_V      - C (treg) += A (1:4 treg + mreg) x B (vreg, transposed)
 * TILE_SPMM_R      - C (ureg) += A (row-wise N:4 treg + mreg) x B (ureg)
 *
 * The metadata register of a sparse A operand is implicitly the mreg
 * with the same index as the A treg (mreg_i pairs treg_i), matching the
 * three-operand encodings of Table II.
 */

#ifndef VEGETA_ISA_INSTRUCTIONS_HPP
#define VEGETA_ISA_INSTRUCTIONS_HPP

#include <array>
#include <string>
#include <vector>

#include "isa/registers.hpp"

namespace vegeta::isa {

enum class Opcode : u8
{
    TileLoadT,
    TileLoadU,
    TileLoadV,
    TileLoadM,
    TileStoreT,
    TileGemm,
    TileSpmmU,
    TileSpmmV,
    TileSpmmR,
};

const char *opcodeName(Opcode op);

/** True for TILE_GEMM / TILE_SPMM_* (instructions the engine executes). */
bool isTileCompute(Opcode op);
/** True for the tile load instructions (including metadata loads). */
bool isTileLoad(Opcode op);
bool isTileStore(Opcode op);

/** Dimensions of a tile-compute instruction (effective A, B, C shapes). */
struct ComputeShape
{
    u32 m = 0; ///< C rows (= effective A rows)
    u32 n = 0; ///< C cols (= B cols)
    u32 k = 0; ///< effective inner dimension
};

/** Effective shape of each compute opcode (Section IV-B). */
ComputeShape computeShape(Opcode op);

/** Useful MACs per instruction (8192 for GEMM/SPMM_U/SPMM_V). */
u64 effectualMacs(Opcode op);

/**
 * Fixed-capacity list of physical dependency-tracking register ids.
 * An instruction names at most 7 (TILE_SPMM_V: C + A + four vreg
 * tregs + the paired mreg), so operand queries in the replay hot loop
 * never allocate.
 */
struct RegList
{
    static constexpr u32 kCapacity = 8;

    std::array<u32, kCapacity> ids{};
    u32 count = 0;

    void
    push(u32 id)
    {
        VEGETA_ASSERT(count < kCapacity, "RegList overflow");
        ids[count++] = id;
    }

    bool
    contains(u32 id) const
    {
        for (u32 i = 0; i < count; ++i)
            if (ids[i] == id)
                return true;
        return false;
    }

    const u32 *begin() const { return ids.data(); }
    const u32 *end() const { return ids.data() + count; }
};

/** One VEGETA instruction instance. */
struct Instruction
{
    Opcode op = Opcode::TileGemm;

    TileReg dst;  ///< loads: destination reg; compute: C; store: source
    TileReg srcA; ///< compute: A operand (treg / ureg)
    TileReg srcB; ///< compute: B operand (treg / ureg / vreg)
    u8 mreg = 0;  ///< TILE_LOAD_M destination mreg index

    Addr addr = 0;   ///< loads/stores: base address
    u32 stride = 0;  ///< loads/stores: row stride in bytes
    u8 rows = 0;     ///< TILE_SPMM_R: R, the effective A row count

    std::string toString() const;

    /**
     * Physical registers read / written, with ureg/vreg aliases
     * expanded to backing treg ids.  Id space: tregs 0-7, mregs 8-15.
     * Compute instructions read their destination too (accumulation).
     */
    std::vector<u32> readRegs() const;
    std::vector<u32> writeRegs() const;

    /**
     * Destination registers written by accumulation (the C operand of
     * compute instructions) -- the registers eligible for the output
     * forwarding optimization of Section V-C.
     */
    std::vector<u32> accumulateRegs() const;

    /** Allocation-free equivalents for per-op scheduling loops. */
    RegList readRegList() const;
    RegList writeRegList() const;
    RegList accumulateRegList() const;
};

/** Physical dependency-tracking id of an mreg. */
constexpr u32
mregDepId(u32 mreg_index)
{
    return kNumTregs + mreg_index;
}

/** Size of the physical dependency-id space (tregs + mregs). */
inline constexpr u32 kNumDepRegs = kNumTregs + kNumMregs;

/** Instruction builders (argument order follows Table II). */
Instruction makeTileLoadT(TileReg dst, Addr addr, u32 stride);
Instruction makeTileLoadU(TileReg dst, Addr addr, u32 stride);
Instruction makeTileLoadV(TileReg dst, Addr addr, u32 stride);
Instruction makeTileLoadM(u8 mreg, Addr addr);
Instruction makeTileStoreT(Addr addr, u32 stride, TileReg src);
Instruction makeTileGemm(TileReg dst, TileReg a, TileReg b);
Instruction makeTileSpmmU(TileReg dst, TileReg a, TileReg b);
Instruction makeTileSpmmV(TileReg dst, TileReg a, TileReg b);
Instruction makeTileSpmmR(TileReg dst, TileReg a, TileReg b, u8 rows);

} // namespace vegeta::isa

#endif // VEGETA_ISA_INSTRUCTIONS_HPP
