#include "isa/memory.hpp"

#include <cstring>

#include "common/logging.hpp"

namespace vegeta::isa {

u8
FlatMemory::readByte(Addr addr) const
{
    auto it = pages_.find(addr / kPageBytes);
    if (it == pages_.end())
        return 0;
    return it->second[addr % kPageBytes];
}

void
FlatMemory::writeByte(Addr addr, u8 value)
{
    auto &page = pages_[addr / kPageBytes];
    page[addr % kPageBytes] = value;
}

void
FlatMemory::readBytes(Addr addr, u8 *out, std::size_t count) const
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = readByte(addr + i);
}

void
FlatMemory::writeBytes(Addr addr, const u8 *in, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        writeByte(addr + i, in[i]);
}

std::vector<u8>
FlatMemory::read(Addr addr, std::size_t count) const
{
    std::vector<u8> out(count);
    readBytes(addr, out.data(), count);
    return out;
}

void
FlatMemory::write(Addr addr, const std::vector<u8> &bytes)
{
    writeBytes(addr, bytes.data(), bytes.size());
}

std::size_t
storeMatrixBF16(FlatMemory &mem, Addr addr, const MatrixBF16 &mat,
                u32 stride_bytes)
{
    VEGETA_ASSERT(stride_bytes >= mat.cols() * 2,
                  "stride smaller than row bytes");
    for (u32 r = 0; r < mat.rows(); ++r) {
        for (u32 c = 0; c < mat.cols(); ++c) {
            u16 bits = mat.at(r, c).bits();
            mem.writeByte(addr + std::size_t{r} * stride_bytes + c * 2,
                          static_cast<u8>(bits & 0xff));
            mem.writeByte(addr + std::size_t{r} * stride_bytes + c * 2 + 1,
                          static_cast<u8>(bits >> 8));
        }
    }
    return std::size_t{mat.rows()} * stride_bytes;
}

MatrixBF16
loadMatrixBF16(const FlatMemory &mem, Addr addr, u32 rows, u32 cols,
               u32 stride_bytes)
{
    MatrixBF16 mat(rows, cols);
    for (u32 r = 0; r < rows; ++r) {
        for (u32 c = 0; c < cols; ++c) {
            u16 bits =
                mem.readByte(addr + std::size_t{r} * stride_bytes + c * 2);
            bits |= static_cast<u16>(mem.readByte(
                        addr + std::size_t{r} * stride_bytes + c * 2 + 1))
                    << 8;
            mat.at(r, c) = BF16::fromBits(bits);
        }
    }
    return mat;
}

std::size_t
storeMatrixF32(FlatMemory &mem, Addr addr, const MatrixF &mat,
               u32 stride_bytes)
{
    VEGETA_ASSERT(stride_bytes >= mat.cols() * 4,
                  "stride smaller than row bytes");
    for (u32 r = 0; r < mat.rows(); ++r) {
        for (u32 c = 0; c < mat.cols(); ++c) {
            u32 bits;
            float f = mat.at(r, c);
            std::memcpy(&bits, &f, sizeof(bits));
            for (u32 b = 0; b < 4; ++b)
                mem.writeByte(addr + std::size_t{r} * stride_bytes + c * 4 +
                                  b,
                              static_cast<u8>((bits >> (8 * b)) & 0xff));
        }
    }
    return std::size_t{mat.rows()} * stride_bytes;
}

MatrixF
loadMatrixF32(const FlatMemory &mem, Addr addr, u32 rows, u32 cols,
              u32 stride_bytes)
{
    MatrixF mat(rows, cols);
    for (u32 r = 0; r < rows; ++r) {
        for (u32 c = 0; c < cols; ++c) {
            u32 bits = 0;
            for (u32 b = 0; b < 4; ++b)
                bits |= static_cast<u32>(mem.readByte(
                            addr + std::size_t{r} * stride_bytes + c * 4 +
                            b))
                        << (8 * b);
            float f;
            std::memcpy(&f, &bits, sizeof(f));
            mat.at(r, c) = f;
        }
    }
    return mat;
}

void
storeMetadata(FlatMemory &mem, Addr addr, const std::vector<u8> &body,
              const std::vector<u8> &row_desc)
{
    VEGETA_ASSERT(body.size() <= kMregBytes, "metadata body too large: ",
                  body.size());
    VEGETA_ASSERT(row_desc.size() <= kMregDescBytes,
                  "row descriptor too large: ", row_desc.size());
    std::vector<u8> image(kMregBytes + kMregDescBytes, 0);
    std::copy(body.begin(), body.end(), image.begin());
    std::copy(row_desc.begin(), row_desc.end(),
              image.begin() + kMregBytes);
    mem.write(addr, image);
}

} // namespace vegeta::isa
