/**
 * @file
 * Regenerates the abstract's headline numbers: a VEGETA engine
 * provides 1.09x / 2.20x / 3.74x / 3.28x speed-ups over the SOTA
 * dense matrix engine (RASA-DM) for 4:4 / 2:4 / 1:4 / unstructured
 * (95%) sparse DNN layers.
 */

#include <cstring>
#include <iostream>

#include "common/table.hpp"
#include "kernels/driver.hpp"
#include "model/unstructured_analysis.hpp"

int
main(int argc, char **argv)
{
    using namespace vegeta;
    using namespace vegeta::kernels;

    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    const auto workloads = quick ? quickWorkloads() : tableIVWorkloads();

    std::cout << "Headline speed-ups vs SOTA dense engine (RASA-DM), "
              << (quick ? "quick" : "full Table IV") << " workloads\n\n";

    Table table({"pattern", "measured", "paper"});

    const struct
    {
        u32 n;
        const char *label;
        const char *paper;
    } structured[] = {
        {4, "4:4 (dense)", "1.09x"},
        {2, "2:4", "2.20x"},
        {1, "1:4", "3.74x"},
    };
    for (const auto &row : structured) {
        const double s = geomeanSpeedupVsDenseBaseline(
            workloads, row.n, engine::vegetaS162(), true);
        table.row().cell(row.label).cell(formatDouble(s, 2) + "x").cell(
            row.paper);
    }

    // Unstructured 95%: the Section VI-E roofline path (row-wise
    // transformation, compute-bound model).
    const auto unstructured =
        model::figure15Series(workloads, {0.95});
    table.row()
        .cell("unstructured (95%)")
        .cell(formatDouble(unstructured[0].rowWise, 2) + "x")
        .cell("3.28x");

    table.print(std::cout);
    return 0;
}
