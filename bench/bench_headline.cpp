/**
 * @file
 * Regenerates the abstract's headline numbers: a VEGETA engine
 * provides 1.09x / 2.20x / 3.74x / 3.28x speed-ups over the SOTA
 * dense matrix engine (RASA-DM) for 4:4 / 2:4 / 1:4 / unstructured
 * (95%) sparse DNN layers.  Structured rows run through the
 * vegeta::sim facade's parallel geomean sweep.
 */

#include <cstring>
#include <iostream>

#include "sim/session.hpp"

int
main(int argc, char **argv)
{
    using namespace vegeta;

    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    const sim::Session simulator;
    const auto workloads =
        simulator.workloads().group(quick ? "quick" : "tableIV");
    std::vector<std::string> workload_names;
    for (const auto &w : workloads)
        workload_names.push_back(w.name);

    std::cout << "Headline speed-ups vs SOTA dense engine (RASA-DM), "
              << (quick ? "quick" : "full Table IV") << " workloads\n\n";

    Table table({"pattern", "measured", "paper"});

    const struct
    {
        u32 n;
        const char *label;
        const char *paper;
    } structured[] = {
        {4, "4:4 (dense)", "1.09x"},
        {2, "2:4", "2.20x"},
        {1, "1:4", "3.74x"},
    };
    for (const auto &row : structured) {
        const double s = sim::geomeanSpeedup(
            simulator, workload_names, row.n, "VEGETA-S-16-2",
            /*output_forwarding=*/true);
        table.row().cell(row.label).cell(formatDouble(s, 2) + "x").cell(
            row.paper);
    }

    // Unstructured 95%: the Section VI-E roofline path (row-wise
    // transformation, compute-bound model) via the analytical registry.
    sim::AnalyticalRequest unstructured;
    unstructured.model = "fig15-unstructured";
    unstructured.workloads = workload_names;
    unstructured.params["degree"] = 0.95;
    const auto series = simulator.analyze(unstructured);
    table.row()
        .cell("unstructured (95%)")
        .cell(formatDouble(series.number(0, "row-wise"), 2) + "x")
        .cell("3.28x");

    table.print(std::cout);
    return 0;
}
