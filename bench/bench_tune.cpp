/**
 * @file
 * Search-quality-vs-budget bench for the sim::Tuner.
 *
 * For one workload's figure13 search space (45 valid points) the
 * bench first establishes ground truth -- the exhaustive full-replay
 * optimum -- and then runs both search strategies at a ladder of
 * replay budgets, recording each strategy's regret (best found /
 * true optimum - 1, in measured cycles per MAC) and funnel counts.
 * The rows land in the BENCH_replay.json trajectory as the "tune"
 * family of the current commit's entry (bench/trajectory.hpp), next
 * to the replay-throughput and service families.
 *
 * Usage: bench_tune [--smoke] [--out FILE] [--commit KEY]
 *                   [--workload NAME] [--max-regret X]
 *
 * --max-regret X exits non-zero when the exhaustive strategy's
 * regret at the largest budget exceeds X -- the CI gate that the
 * analytical prefilter keeps finding the true optimum.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/session.hpp"
#include "sim/tune.hpp"
#include "trajectory.hpp"

using namespace vegeta;

namespace {

struct BudgetPoint
{
    u32 budget = 0;
    double exhaustiveCyclesPerMac = 0.0;
    double exhaustiveRegret = 0.0;
    double halvingCyclesPerMac = 0.0;
    double halvingRegret = 0.0;
    u64 analyzedPoints = 0;
    double seconds = 0.0;
};

double
bestCyclesPerMac(const sim::TuneReport &report)
{
    const auto *best = report.best();
    return best ? best->measuredCyclesPerMac : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_replay.json";
    std::string commit;
    std::string workload = "GPT-L3";
    double max_regret = -1.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--commit") {
            commit = next();
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--max-regret") {
            max_regret = std::atof(next().c_str());
        } else {
            std::cerr << "usage: bench_tune [--smoke] [--out FILE] "
                         "[--commit KEY] [--workload NAME] "
                         "[--max-regret X]\n";
            return 1;
        }
    }

    sim::Session session;
    session.enableCache(); // budgets share replays across runs
    if (!session.workloads().contains(workload)) {
        std::cerr << "unknown workload: " << workload << "\n";
        return 1;
    }
    const auto space = sim::TuneSpace::figure13(session, {workload});

    // Ground truth: replay every valid point.
    sim::TuneOptions truth_options;
    truth_options.strategy = sim::TuneStrategy::CappedExhaustive;
    truth_options.budget.replays = u32(space.rawSize());
    const auto truth =
        sim::Tuner(session, truth_options).run(space);
    if (!truth.best()) {
        std::cerr << "ground-truth sweep confirmed nothing\n";
        return 2;
    }
    const double optimum = truth.best()->measuredCyclesPerMac;
    std::printf("ground truth: %llu valid points, optimum %s at "
                "%.6f cycles/MAC\n",
                static_cast<unsigned long long>(truth.validPoints),
                sim::tunePointKey(truth.best()->point).c_str(),
                optimum);

    const std::vector<u32> budgets =
        smoke ? std::vector<u32>{1, 4} :
                std::vector<u32>{1, 2, 4, 8, 16};
    std::vector<BudgetPoint> points;
    for (const u32 budget : budgets) {
        BudgetPoint point;
        point.budget = budget;
        const auto t0 = bench::Clock::now();

        sim::TuneOptions options;
        options.budget.replays = budget;
        options.strategy = sim::TuneStrategy::CappedExhaustive;
        const auto exhaustive =
            sim::Tuner(session, options).run(space);
        options.strategy = sim::TuneStrategy::RandomHalving;
        const auto halving = sim::Tuner(session, options).run(space);

        point.seconds = bench::seconds(t0, bench::Clock::now());
        point.exhaustiveCyclesPerMac = bestCyclesPerMac(exhaustive);
        point.halvingCyclesPerMac = bestCyclesPerMac(halving);
        point.exhaustiveRegret =
            point.exhaustiveCyclesPerMac / optimum - 1.0;
        point.halvingRegret =
            point.halvingCyclesPerMac / optimum - 1.0;
        point.analyzedPoints = exhaustive.analyzedPoints;
        points.push_back(point);
        std::printf("budget %2u: exhaustive regret %.4f, halving "
                    "regret %.4f (%llu analyzed, %.3fs)\n",
                    budget, point.exhaustiveRegret,
                    point.halvingRegret,
                    static_cast<unsigned long long>(
                        point.analyzedPoints),
                    point.seconds);
    }

    // --- merge the "tune" row family into the trajectory -----------
    if (commit.empty())
        commit = bench::gitShortHead();
    std::ostringstream tune;
    tune << "{\"workload\": \"" << workload
         << "\", \"valid_points\": " << truth.validPoints
         << ", \"optimum_cycles_per_mac\": " << optimum
         << ", \"budgets\": [";
    for (std::size_t i = 0; i < points.size(); ++i)
        tune << (i ? ", " : "") << "{\"budget\": "
             << points[i].budget << ", \"analyzed\": "
             << points[i].analyzedPoints
             << ", \"exhaustive_regret\": "
             << points[i].exhaustiveRegret
             << ", \"halving_regret\": " << points[i].halvingRegret
             << ", \"seconds\": " << points[i].seconds << "}";
    tune << "]}";

    std::string entry;
    for (const auto &old :
         bench::trajectoryEntries(bench::readFileText(out_path)))
        if (bench::entryCommit(old) == commit)
            entry = old;
    if (entry.empty())
        entry = "{\"commit\": \"" + commit + "\", \"mode\": \"" +
                (smoke ? "smoke" : "full") + "\"}";
    entry = bench::upsertEntryField(entry, "tune", tune.str(),
                                    /*owned=*/true, nullptr);
    std::size_t total_entries = 0;
    if (!bench::mergeTrajectoryEntry(out_path, commit, entry,
                                     &total_entries)) {
        std::cerr << "cannot write " << out_path << "\n";
        return 2;
    }
    std::printf("wrote %s (%zu entries)\n", out_path.c_str(),
                total_entries);

    if (max_regret >= 0 &&
        points.back().exhaustiveRegret > max_regret) {
        std::cerr << "FAIL: exhaustive regret at budget "
                  << points.back().budget << " is "
                  << points.back().exhaustiveRegret
                  << ", above the required " << max_regret << "\n";
        return 1;
    }
    return 0;
}
