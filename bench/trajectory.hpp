/**
 * @file
 * Shared plumbing for the BENCH_replay.json trajectory.
 *
 * The trajectory is an append-only series of one compact JSON object
 * per line, keyed by commit; every bench that contributes a row
 * family (replay throughput, the simulation service) goes through
 * these helpers so the entry/merge/rewrite logic exists once.  Two
 * benches running against the same --out file cooperate: each
 * replaces only its own fields inside the same-commit entry
 * (upsertEntryField) instead of clobbering the other's numbers.
 */

#ifndef VEGETA_BENCH_TRAJECTORY_HPP
#define VEGETA_BENCH_TRAJECTORY_HPP

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace vegeta::bench {

using Clock = std::chrono::steady_clock;

inline double
seconds(Clock::time_point begin, Clock::time_point end)
{
    return std::chrono::duration<double>(end - begin).count();
}

inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0;
    double log_sum = 0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / values.size());
}

/**
 * Fixed-work integer loop (Mops/s): a machine-speed yardstick so a
 * committed baseline from one machine can gate CI runs on another.
 */
inline double
calibrationMops()
{
    volatile unsigned long long sink = 0;
    const unsigned long long iters = 50'000'000;
    unsigned long long h = 0xcbf29ce484222325ull;
    const auto t0 = Clock::now();
    for (unsigned long long i = 0; i < iters; ++i)
        h = (h ^ i) * 0x100000001b3ull;
    const auto t1 = Clock::now();
    sink = h;
    (void)sink;
    return iters / seconds(t0, t1) / 1e6;
}

/** Minimal scan for `"key": <number>` in a JSON text. */
inline bool
findJsonNumber(const std::string &text, const std::string &key,
               double *value)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    *value = std::strtod(text.c_str() + pos + needle.size(), nullptr);
    return true;
}

inline std::string
readFileText(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return "";
    std::stringstream buffer;
    buffer << is.rdbuf();
    return buffer.str();
}

/** `git rev-parse --short HEAD`, or "local" off a checkout. */
inline std::string
gitShortHead()
{
    FILE *pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r");
    if (!pipe)
        return "local";
    char buf[64] = {0};
    const bool got = std::fgets(buf, sizeof(buf), pipe) != nullptr;
    pclose(pipe);
    if (!got)
        return "local";
    std::string head(buf);
    while (!head.empty() &&
           (head.back() == '\n' || head.back() == '\r'))
        head.pop_back();
    return head.empty() ? "local" : head;
}

/**
 * The trajectory's entry lines (one compact JSON object per line,
 * oldest first).  An old single-point file converts into one entry
 * keyed "pre-trajectory"; anything unrecognizable yields no entries
 * (the file is rewritten from scratch).
 */
inline std::vector<std::string>
trajectoryEntries(const std::string &text)
{
    std::vector<std::string> entries;
    if (text.find("\"bench\": \"replay_trajectory\"") !=
        std::string::npos) {
        std::istringstream is(text);
        std::string line;
        while (std::getline(is, line)) {
            const auto start = line.find_first_not_of(" \t");
            if (start == std::string::npos ||
                line.compare(start, 10, "{\"commit\":") != 0)
                continue;
            auto end = line.find_last_of('}');
            if (end == std::string::npos)
                continue;
            entries.push_back(line.substr(start, end - start + 1));
        }
        return entries;
    }
    if (text.find("\"bench\": \"replay_throughput\"") !=
        std::string::npos) {
        // Old single-point format: compact it into one entry line.
        std::string flat;
        flat.reserve(text.size());
        bool in_space = false;
        for (const char c : text) {
            if (c == '\n' || c == '\r' || c == ' ' || c == '\t') {
                in_space = true;
                continue;
            }
            if (in_space && !flat.empty() && flat.back() != '{' &&
                flat.back() != '[' && c != '}' && c != ']')
                flat += ' ';
            in_space = false;
            flat += c;
        }
        const auto brace = flat.find('{');
        if (brace != std::string::npos)
            entries.push_back("{\"commit\": \"pre-trajectory\", " +
                              flat.substr(brace + 1));
    }
    return entries;
}

/** The commit key of an entry line ("" if unparsable). */
inline std::string
entryCommit(const std::string &entry)
{
    const std::string needle = "\"commit\": \"";
    const auto pos = entry.find(needle);
    if (pos == std::string::npos)
        return "";
    const auto start = pos + needle.size();
    const auto end = entry.find('"', start);
    if (end == std::string::npos)
        return "";
    return entry.substr(start, end - start);
}

/**
 * Insert or replace one top-level `"key": <value>` field inside a
 * compact entry line, where <value> is a complete JSON value (the
 * replacement scans balanced braces/brackets, string-aware).  Lets a
 * second bench add its row family to an existing commit's entry
 * without touching the fields the first bench wrote.
 *
 * Ownership guard: pass @p owned = true only for the one row family
 * this bench writes -- a re-run may refresh its own numbers.  With
 * @p owned = false (carrying over another bench's field), a key that
 * is already present with a DIFFERENT value is a merge conflict: the
 * entry is returned unchanged and *conflict describes the collision
 * instead of silently clobbering one bench's numbers with the
 * other's.  An identical value is always an idempotent no-op.
 */
inline std::string
upsertEntryField(const std::string &entry, const std::string &key,
                 const std::string &json_value, bool owned,
                 std::string *conflict)
{
    const std::string needle = "\"" + key + "\": ";
    const auto pos = entry.find(needle);
    if (pos == std::string::npos) {
        // Append before the final '}'.
        const auto end = entry.find_last_of('}');
        if (end == std::string::npos)
            return entry;
        return entry.substr(0, end) + ", " + needle + json_value +
               "}";
    }
    // Find the value's extent: balanced {}/[] outside strings, or a
    // scalar running to the next top-level ',' or '}'.
    std::size_t i = pos + needle.size();
    int depth = 0;
    bool in_string = false;
    std::size_t end = entry.size();
    for (; i < entry.size(); ++i) {
        const char c = entry[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            if (depth == 0) {
                end = i;
                break;
            }
            if (--depth == 0) {
                end = i + 1;
                break;
            }
        } else if (c == ',' && depth == 0) {
            end = i;
            break;
        }
    }
    const std::string existing =
        entry.substr(pos + needle.size(), end - pos - needle.size());
    if (existing == json_value)
        return entry;
    if (!owned) {
        if (conflict)
            *conflict = "conflicting values for \"" + key +
                        "\": entry holds " + existing +
                        " but the merge wants " + json_value;
        return entry;
    }
    return entry.substr(0, pos + needle.size()) + json_value +
           entry.substr(end);
}

/**
 * The complete JSON value of a top-level `"key": <value>` field in a
 * compact entry line ("" when absent).  The counterpart of
 * upsertEntryField: a bench re-running its own row family extracts
 * the other benches' fields from the old entry and carries them
 * over.
 */
inline std::string
extractEntryField(const std::string &entry, const std::string &key)
{
    const std::string needle = "\"" + key + "\": ";
    const auto pos = entry.find(needle);
    if (pos == std::string::npos)
        return "";
    std::size_t i = pos + needle.size();
    int depth = 0;
    bool in_string = false;
    std::size_t end = entry.size();
    for (; i < entry.size(); ++i) {
        const char c = entry[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            if (depth == 0) {
                end = i;
                break;
            }
            if (--depth == 0) {
                end = i + 1;
                break;
            }
        } else if (c == ',' && depth == 0) {
            end = i;
            break;
        }
    }
    return entry.substr(pos + needle.size(),
                        end - pos - needle.size());
}

/**
 * Merge @p entry into the trajectory at @p path under @p commit --
 * existing same-commit entries are replaced, everything else kept --
 * and rewrite the file.  Returns false when the file cannot be
 * written.
 */
inline bool
mergeTrajectoryEntry(const std::string &path,
                     const std::string &commit,
                     const std::string &entry,
                     std::size_t *total_entries = nullptr)
{
    std::vector<std::string> entries =
        trajectoryEntries(readFileText(path));
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const std::string &e) {
                                     return entryCommit(e) == commit;
                                 }),
                  entries.end());
    entries.push_back(entry);
    if (total_entries)
        *total_entries = entries.size();

    std::ofstream os(path);
    if (!os)
        return false;
    os << "{\n  \"bench\": \"replay_trajectory\",\n  \"entries\": "
          "[\n";
    for (std::size_t i = 0; i < entries.size(); ++i)
        os << "    " << entries[i]
           << (i + 1 < entries.size() ? "," : "") << "\n";
    os << "  ]\n}\n";
    return bool(os);
}

} // namespace vegeta::bench

#endif // VEGETA_BENCH_TRAJECTORY_HPP
