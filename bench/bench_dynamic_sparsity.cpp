/**
 * @file
 * Dynamic-sparsity study (paper Section VII): why SAVE-style register
 * compaction works for 32-lane vector registers but not for 512-lane
 * tile registers.
 */

#include <iostream>

#include "common/table.hpp"
#include "model/dynamic_sparsity.hpp"

int
main()
{
    using namespace vegeta;
    using namespace vegeta::model;

    std::cout << "Section VII study: merging sparse registers "
                 "(SAVE-style compaction)\n"
              << "vector register = " << kVectorLanes
              << " operands, tile register = " << kTileLanes
              << " operands\n\n";

    Table table({"nnz_density_%", "P(merge) vector", "P(merge) tile",
                 "compaction vector", "compaction tile"});
    for (const auto &p : compactionStudy()) {
        table.row()
            .cell(p.density * 100.0, 0)
            .cell(p.vectorMergeProb, 4)
            .cell(p.tileMergeProb, 6)
            .cell(p.vectorCompaction, 2)
            .cell(p.tileCompaction, 2);
    }
    table.print(std::cout);

    std::cout << "\nReading: at the dynamic densities ReLU produces "
                 "(tens of percent), two vector registers still merge "
                 "with useful probability, but two tile registers "
                 "essentially never do -- the paper's argument for "
                 "leaving dynamic sparsity on matrix engines as future "
                 "work.\n";
    return 0;
}
