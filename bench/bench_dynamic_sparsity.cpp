/**
 * @file
 * Dynamic-sparsity study (paper Section VII): why SAVE-style register
 * compaction works for 32-lane vector registers but not for 512-lane
 * tile registers.
 *
 * Facade-only: the whole study is the Session's `dynamic-sparsity`
 * analytical backend; nothing here wires model/dynamic_sparsity by
 * hand.
 */

#include <iostream>

#include "sim/session.hpp"

int
main()
{
    using namespace vegeta;

    const sim::Session session;

    std::cout << "Section VII study: merging sparse registers "
                 "(SAVE-style compaction)\n\n";

    auto builder = session.job().model("dynamic-sparsity");
    const auto job = builder.build();
    if (!job) {
        std::cerr << "bad job: " << builder.error() << "\n";
        return 1;
    }
    const auto result = session.run(*job).analysis;
    result.table().print(std::cout);
    for (const auto &note : result.notes)
        std::cout << "  " << note << "\n";

    std::cout << "\nReading: at the dynamic densities ReLU produces "
                 "(tens of percent), two vector registers still merge "
                 "with useful probability, but two tile registers "
                 "essentially never do -- the paper's argument for "
                 "leaving dynamic sparsity on matrix engines as future "
                 "work.\n";
    return 0;
}
