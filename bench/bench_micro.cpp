/**
 * @file
 * google-benchmark microbenchmarks of the simulator stack itself:
 * functional emulation, compression, kernel/trace generation, and the
 * sim-facade replay paths (streaming and batch).  Engine timing is
 * exercised through the facade's micro-latency analytical backend --
 * nothing here wires engine models by hand.
 */

#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "kernels/gemm_kernels.hpp"
#include "sim/session.hpp"
#include "sparsity/pruning.hpp"
#include "sparsity/rowwise_transform.hpp"

namespace {

using namespace vegeta;

void
BM_EmulatorTileGemm(benchmark::State &state)
{
    isa::FlatMemory mem;
    isa::Emulator emu(mem);
    Rng rng(1);
    emu.writeTileBF16(isa::treg(4), randomMatrixBF16(16, 32, rng));
    emu.writeTileBF16(isa::treg(0), randomMatrixBF16(16, 32, rng));
    const auto instr =
        isa::makeTileGemm(isa::treg(5), isa::treg(4), isa::treg(0));
    for (auto _ : state)
        emu.execute(instr);
    state.SetItemsProcessed(state.iterations() *
                            isa::effectualMacs(instr.op));
}
BENCHMARK(BM_EmulatorTileGemm);

void
BM_EmulatorTileSpmmV(benchmark::State &state)
{
    isa::FlatMemory mem;
    isa::Emulator emu(mem);
    Rng rng(2);
    const auto tile = randomNMMatrix(16, 128, pattern14(), rng);
    const auto ct = CompressedTile::compress(tile, pattern14());
    emu.writeTileBF16(isa::treg(4), ct.values());
    emu.setMetadata(4, ct.packMetadata());
    emu.writeTileBF16(isa::vreg(0),
                      randomMatrixBF16(128, 16, rng).transposed());
    const auto instr =
        isa::makeTileSpmmV(isa::treg(5), isa::treg(4), isa::vreg(0));
    for (auto _ : state)
        emu.execute(instr);
    state.SetItemsProcessed(state.iterations() *
                            isa::effectualMacs(instr.op));
}
BENCHMARK(BM_EmulatorTileSpmmV);

void
BM_CompressTile(benchmark::State &state)
{
    Rng rng(3);
    const auto tile = randomNMMatrix(16, 64, pattern24(), rng);
    for (auto _ : state) {
        auto ct = CompressedTile::compress(tile, pattern24());
        benchmark::DoNotOptimize(ct);
    }
}
BENCHMARK(BM_CompressTile);

void
BM_RowWiseTransform(benchmark::State &state)
{
    Rng rng(4);
    const auto chunk = randomUnstructuredMatrix(32, 64, 0.9, rng);
    for (auto _ : state) {
        auto rwt = transformChunkToRowWise(chunk);
        benchmark::DoNotOptimize(rwt);
    }
}
BENCHMARK(BM_RowWiseTransform);

sim::SimulationRequest
microRequest(const sim::Session &simulator)
{
    auto request = simulator.request()
                       .gemm(kernels::GemmDims{64, 64, 512})
                       .engine("VEGETA-S-16-2")
                       .pattern(2)
                       .build();
    return *request;
}

void
BM_FacadeStreamingRun(benchmark::State &state)
{
    const sim::Session simulator; // no cache: measure the replay
    const auto request = microRequest(simulator);
    u64 uops = 0;
    for (auto _ : state) {
        auto result = simulator.run(request);
        uops = result.instructions;
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations() * uops);
}
BENCHMARK(BM_FacadeStreamingRun);

void
BM_FacadeBatchReplay(benchmark::State &state)
{
    const sim::Session simulator;
    const auto request = microRequest(simulator);
    cpu::Trace trace;
    simulator.run(request, &trace);
    for (auto _ : state) {
        auto result = simulator.replay(trace, request);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_FacadeBatchReplay);

void
BM_TraceGeneration(benchmark::State &state)
{
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    for (auto _ : state) {
        auto run = kernels::runSpmmKernel({64, 64, 512}, 2, opts);
        benchmark::DoNotOptimize(run);
    }
}
BENCHMARK(BM_TraceGeneration);

void
BM_AnalyticalMicroLatency(benchmark::State &state)
{
    const sim::Session simulator;
    sim::AnalyticalRequest request;
    request.model = "micro-latency";
    for (auto _ : state) {
        auto result = simulator.analyze(request);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_AnalyticalMicroLatency);

} // namespace

BENCHMARK_MAIN();
