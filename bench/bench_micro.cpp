/**
 * @file
 * google-benchmark microbenchmarks of the simulator stack itself:
 * functional emulation, compression, the detailed systolic dataflow,
 * and the trace-driven CPU model.
 */

#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "cpu/trace_cpu.hpp"
#include "engine/systolic.hpp"
#include "isa/emulator.hpp"
#include "kernels/gemm_kernels.hpp"
#include "sparsity/pruning.hpp"
#include "sparsity/rowwise_transform.hpp"

namespace {

using namespace vegeta;

void
BM_EmulatorTileGemm(benchmark::State &state)
{
    isa::FlatMemory mem;
    isa::Emulator emu(mem);
    Rng rng(1);
    emu.writeTileBF16(isa::treg(4), randomMatrixBF16(16, 32, rng));
    emu.writeTileBF16(isa::treg(0), randomMatrixBF16(16, 32, rng));
    const auto instr =
        isa::makeTileGemm(isa::treg(5), isa::treg(4), isa::treg(0));
    for (auto _ : state)
        emu.execute(instr);
    state.SetItemsProcessed(state.iterations() *
                            isa::effectualMacs(instr.op));
}
BENCHMARK(BM_EmulatorTileGemm);

void
BM_EmulatorTileSpmmV(benchmark::State &state)
{
    isa::FlatMemory mem;
    isa::Emulator emu(mem);
    Rng rng(2);
    const auto tile = randomNMMatrix(16, 128, pattern14(), rng);
    const auto ct = CompressedTile::compress(tile, pattern14());
    emu.writeTileBF16(isa::treg(4), ct.values());
    emu.setMetadata(4, ct.packMetadata());
    emu.writeTileBF16(isa::vreg(0),
                      randomMatrixBF16(128, 16, rng).transposed());
    const auto instr =
        isa::makeTileSpmmV(isa::treg(5), isa::treg(4), isa::vreg(0));
    for (auto _ : state)
        emu.execute(instr);
    state.SetItemsProcessed(state.iterations() *
                            isa::effectualMacs(instr.op));
}
BENCHMARK(BM_EmulatorTileSpmmV);

void
BM_CompressTile(benchmark::State &state)
{
    Rng rng(3);
    const auto tile = randomNMMatrix(16, 64, pattern24(), rng);
    for (auto _ : state) {
        auto ct = CompressedTile::compress(tile, pattern24());
        benchmark::DoNotOptimize(ct);
    }
}
BENCHMARK(BM_CompressTile);

void
BM_RowWiseTransform(benchmark::State &state)
{
    Rng rng(4);
    const auto chunk = randomUnstructuredMatrix(32, 64, 0.9, rng);
    for (auto _ : state) {
        auto rwt = transformChunkToRowWise(chunk);
        benchmark::DoNotOptimize(rwt);
    }
}
BENCHMARK(BM_RowWiseTransform);

void
BM_SystolicSpmm(benchmark::State &state)
{
    Rng rng(5);
    const auto tile = randomNMMatrix(16, 64, pattern24(), rng);
    const auto ct = CompressedTile::compress(tile, pattern24());
    const auto bt = randomMatrixBF16(64, 16, rng).transposed();
    const MatrixF c0(16, 16);
    engine::SystolicSimulator sim(engine::vegetaS22());
    for (auto _ : state) {
        auto result = sim.runSpmm(ct, bt, c0);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_SystolicSpmm);

void
BM_TraceCpuSimulation(benchmark::State &state)
{
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    const auto run =
        kernels::runSpmmKernel({64, 64, 512}, 2, opts);
    for (auto _ : state) {
        cpu::TraceCpu cpu({}, engine::vegetaS162());
        auto result = cpu.run(run.trace);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations() * run.trace.size());
}
BENCHMARK(BM_TraceCpuSimulation);

void
BM_TraceGeneration(benchmark::State &state)
{
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    for (auto _ : state) {
        auto run = kernels::runSpmmKernel({64, 64, 512}, 2, opts);
        benchmark::DoNotOptimize(run);
    }
}
BENCHMARK(BM_TraceGeneration);

} // namespace

BENCHMARK_MAIN();
