/**
 * @file
 * Regenerates Figure 10: pipelined schedules of tile instructions on
 * VEGETA-D-1-2 and VEGETA-S-16-2 -- independent streams, dependent
 * streams without OF, and dependent streams with OF -- through the
 * facade's fig10-pipelining analytical backend.
 */

#include <iostream>

#include "sim/session.hpp"

namespace {

using namespace vegeta;

void
printSchedule(const sim::Session &simulator, const std::string &title,
              const std::string &engine, bool dependent,
              bool output_forwarding)
{
    std::cout << title << "\n";
    sim::AnalyticalRequest request;
    request.model = "fig10-pipelining";
    request.engines = {engine};
    request.params["dependent"] = dependent ? 1 : 0;
    request.params["output_forwarding"] = output_forwarding ? 1 : 0;
    simulator.analyze(request).table().print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "Figure 10: pipelining on VEGETA-D-1-2 / "
                 "VEGETA-S-16-2 (cycle ranges per stage)\n\n";

    const sim::Session simulator;
    printSchedule(simulator,
                  "(a) VEGETA-D-1-2, independent instructions",
                  "VEGETA-D-1-2", false, false);
    printSchedule(simulator,
                  "(b) VEGETA-S-16-2, independent instructions",
                  "VEGETA-S-16-2", false, false);
    printSchedule(simulator,
                  "(c) VEGETA-S-16-2, dependent instructions, no OF",
                  "VEGETA-S-16-2", true, false);
    printSchedule(simulator,
                  "(d) VEGETA-S-16-2, dependent instructions, with OF",
                  "VEGETA-S-16-2", true, true);

    std::cout << "Check: (a)/(b) issue every 16 cycles; (c) dependent "
                 "FF waits for full write-back; (d) OF shrinks the "
                 "dependent issue interval to Nrows + log2(beta) = 17 "
                 "cycles.\n";
    return 0;
}
