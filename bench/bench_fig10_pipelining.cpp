/**
 * @file
 * Regenerates Figure 10: pipelined schedules of tile instructions on
 * VEGETA-D-1-2 and VEGETA-S-16-2 -- independent streams, dependent
 * streams without OF, and dependent streams with OF.
 */

#include <iostream>

#include "common/table.hpp"
#include "engine/pipeline.hpp"

namespace {

using namespace vegeta;
using namespace vegeta::engine;

void
printSchedule(const std::string &title, const EngineConfig &cfg,
              bool dependent, bool output_forwarding)
{
    std::cout << title << "\n";
    PipelineModel model(cfg, output_forwarding);
    const auto lat = model.stages(
        isa::makeTileGemm(isa::treg(5), isa::treg(4), isa::treg(0)));

    Table table({"instr", "WL", "FF", "FS", "DR", "finish"});
    const u8 dsts_indep[4] = {1, 2, 3, 5};
    for (int i = 0; i < 4; ++i) {
        const u8 dst = dependent ? 5 : dsts_indep[i % 4];
        const auto op = model.issue(
            isa::makeTileGemm(isa::treg(dst), isa::treg(4),
                              isa::treg(0)),
            0);
        auto range = [](Cycles a, Cycles b) {
            return std::to_string(a) + "-" + std::to_string(b);
        };
        Cycles t = op.start;
        table.row().cell("#" + std::to_string(i) + " C=treg" +
                         std::to_string(dst));
        table.cell(range(t, t + lat.wl));
        t += lat.wl;
        table.cell(range(t, t + lat.ff));
        t += lat.ff;
        table.cell(range(t, t + lat.fs));
        t += lat.fs;
        table.cell(range(t, t + lat.dr));
        table.cell(static_cast<unsigned long long>(op.finish));
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "Figure 10: pipelining on VEGETA-D-1-2 / "
                 "VEGETA-S-16-2 (cycle ranges per stage)\n\n";

    printSchedule("(a) VEGETA-D-1-2, independent instructions",
                  vegetaD12(), false, false);
    printSchedule("(b) VEGETA-S-16-2, independent instructions",
                  vegetaS162(), false, false);
    printSchedule("(c) VEGETA-S-16-2, dependent instructions, no OF",
                  vegetaS162(), true, false);
    printSchedule("(d) VEGETA-S-16-2, dependent instructions, with OF",
                  vegetaS162(), true, true);

    std::cout << "Check: (a)/(b) issue every 16 cycles; (c) dependent "
                 "FF waits for full write-back; (d) OF shrinks the "
                 "dependent issue interval to Nrows + log2(beta) = 17 "
                 "cycles.\n";
    return 0;
}
