/**
 * @file
 * Ablation: sparsity block size M (paper Sections IV-C and V-D).
 *
 * "A larger M provides greater flexibility to the sparse model design
 * and may result in improved accuracy, but would cost more HW."  This
 * ablation quantifies both halves for M = 4 / 8 / 16 on VEGETA-S-2-2:
 *
 *  - coverage: the row-wise covering speed-up on unstructured sparse
 *    layers (finer legal-N choices cover non-zeros more tightly);
 *  - hardware: the physical model with M:1 muxes, log2(M)-bit
 *    metadata, beta*M-wide input vectors, and the deeper mux path.
 */

#include <iostream>

#include "common/random.hpp"
#include "common/table.hpp"
#include "engine/area_model.hpp"
#include "sparsity/pruning.hpp"
#include "sparsity/rowwise_transform.hpp"

int
main()
{
    using namespace vegeta;

    std::cout << "Ablation: block size M (VEGETA-S-2-2 base design)\n\n";

    // --- Coverage: row-wise speed-up vs unstructured degree ----------
    std::cout << "Row-wise covering speed-up on unstructured layers "
                 "(128x1024, mean of 4 seeds):\n\n";
    Table coverage({"degree_%", "M=4", "M=8", "M=16"});
    for (double degree : {0.70, 0.80, 0.90, 0.95}) {
        double sums[3] = {0, 0, 0};
        const u32 ms[3] = {4, 8, 16};
        const int trials = 4;
        for (int t = 0; t < trials; ++t) {
            Rng rng(900 + t);
            const MatrixBF16 base = randomMatrixBF16(128, 1024, rng);
            Rng mask_rng(17 * t + static_cast<u64>(degree * 1000));
            const MatrixBF16 m =
                maskUnstructuredBernoulli(base, degree, mask_rng);
            for (int i = 0; i < 3; ++i)
                sums[i] += rowWiseSpeedupForBlockSize(m, ms[i]);
        }
        coverage.row().cell(degree * 100.0, 0);
        for (double s : sums)
            coverage.cell(s / trials, 2);
    }
    coverage.print(std::cout);

    // --- Hardware cost ------------------------------------------------
    std::cout << "\nPhysical cost (normalized to the M=4 RASA-SM "
                 "baseline):\n\n";
    const auto baseline = engine::estimatePhysical(engine::vegetaD11());
    Table hw({"M", "norm_area", "norm_power", "max_freq_GHz",
              "metadata_bits/value", "input_elems/PE"});
    for (u32 m : {4u, 8u, 16u}) {
        const auto est =
            engine::estimatePhysical(engine::vegetaS22(), m);
        hw.row()
            .cell(static_cast<int>(m))
            .cell(est.areaUnits / baseline.areaUnits, 3)
            .cell(est.powerUnits / baseline.powerUnits, 3)
            .cell(est.maxFrequencyGhz, 2)
            .cell(static_cast<int>(indexBitsForBlockSize(m)))
            .cell(static_cast<int>(2 * m));
    }
    hw.print(std::cout);

    std::cout << "\nReading: doubling M tightens unstructured coverage "
                 "(higher speed-up at the same degree) but grows the "
                 "mux/metadata/buffer area and lowers the attainable "
                 "frequency -- the Section V-D trade-off.\n";
    return 0;
}
