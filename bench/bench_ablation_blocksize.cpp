/**
 * @file
 * Ablation: sparsity block size M (paper Sections IV-C and V-D).
 *
 * "A larger M provides greater flexibility to the sparse model design
 * and may result in improved accuracy, but would cost more HW."  This
 * ablation quantifies both halves for M = 4 / 8 / 16 on VEGETA-S-2-2
 * through the facade's blocksize-coverage / blocksize-hardware
 * analytical backends:
 *
 *  - coverage: the row-wise covering speed-up on unstructured sparse
 *    layers (finer legal-N choices cover non-zeros more tightly);
 *  - hardware: the physical model with M:1 muxes, log2(M)-bit
 *    metadata, beta*M-wide input vectors, and the deeper mux path.
 */

#include <iostream>

#include "sim/session.hpp"

int
main()
{
    using namespace vegeta;

    std::cout << "Ablation: block size M (VEGETA-S-2-2 base design)\n\n";

    const sim::Session simulator;

    std::cout << "Row-wise covering speed-up on unstructured layers "
                 "(128x1024, mean of 4 seeds):\n\n";
    sim::AnalyticalRequest coverage;
    coverage.model = "blocksize-coverage";
    simulator.analyze(coverage).table().print(std::cout);

    std::cout << "\nPhysical cost (normalized to the M=4 RASA-SM "
                 "baseline):\n\n";
    sim::AnalyticalRequest hardware;
    hardware.model = "blocksize-hardware";
    hardware.engines = {"VEGETA-S-2-2"};
    simulator.analyze(hardware).table().print(std::cout);

    std::cout << "\nReading: doubling M tightens unstructured coverage "
                 "(higher speed-up at the same degree) but grows the "
                 "mux/metadata/buffer area and lowers the attainable "
                 "frequency -- the Section V-D trade-off.\n";
    return 0;
}
