/**
 * @file
 * Replay-throughput harness: the machine-readable perf baseline for
 * the simulator's hottest loop.
 *
 * Measures, on Figure 13-style SPMM workloads:
 *  - single-stream batch replay (pre-recorded trace -> TraceCpu) in
 *    uops/sec,
 *  - single-stream streaming simulation (kernel generator emitting
 *    straight into the replayer, no materialized trace),
 *  - a thread-pooled Session::runBatch grid (uops/sec),
 *  - the same grid sharded over worker PROCESSES (ProcessPool) at
 *    several worker counts -- the pooled-sweep scaling row (workers
 *    re-enter this binary through the hidden "worker" argv token),
 *  - peak RSS before and after materializing the largest trace (the
 *    streaming path's memory does not scale with trace length).
 *
 * Appends one entry (keyed by commit, one JSON object per line) to
 * the BENCH_replay.json trajectory, so the file accumulates one
 * point per PR instead of being overwritten; an entry with the same
 * commit key is replaced, and an old single-point file is converted
 * in place.  With --baseline FILE the run compares its single-stream
 * geomean against the LATEST entry of the committed trajectory and
 * exits non-zero past --max-regress PCT (default 30).  Because
 * absolute uops/sec depends on the machine, a small fixed-work
 * calibration loop is timed too and the baseline is scaled by the
 * calibration ratio (clamped to 4x either way) before comparing.
 *
 * A telemetry_overhead row measures the same batch replay with span
 * tracing armed vs disarmed (interleaved arms) and the run fails
 * past --max-telemetry-overhead PCT (default 2).
 *
 * Usage: bench_replay_throughput [--smoke] [--out FILE]
 *        [--threads N] [--commit KEY] [--baseline FILE]
 *        [--max-regress PCT] [--max-telemetry-overhead PCT]
 */

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cpu/lane_replayer.hpp"
#include "engine/config.hpp"
#include "sim/pool.hpp"
#include "sim/session.hpp"
#include "sim/telemetry.hpp"

#include "trajectory.hpp"

namespace {

using namespace vegeta;
using bench::Clock;
using bench::calibrationMops;
using bench::entryCommit;
using bench::findJsonNumber;
using bench::geomean;
using bench::readFileText;
using bench::seconds;
using bench::trajectoryEntries;

/** Current peak RSS in bytes (Linux ru_maxrss is in KiB). */
u64
peakRssBytes()
{
    rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    return static_cast<u64>(usage.ru_maxrss) * 1024;
}

struct Point
{
    std::string label;
    kernels::GemmDims dims;
    std::string engine;
    u32 pattern;
};

struct PointResult
{
    Point point;
    u64 uops = 0;
    double batchUopsPerSec = 0;
    double streamUopsPerSec = 0;
};

sim::SimulationRequest
requestFor(const sim::Session &simulator, const Point &point)
{
    auto request = simulator.request()
                       .gemm(point.dims)
                       .engine(point.engine)
                       .pattern(point.pattern)
                       .build();
    VEGETA_ASSERT(request.has_value(), "invalid bench request");
    return *request;
}

/** Streaming: generation + replay fused, no trace in memory. */
void
measureStream(const sim::Session &simulator, PointResult &out,
              int reps)
{
    const auto request = requestFor(simulator, out.point);
    for (int r = 0; r < reps; ++r) {
        const auto t0 = Clock::now();
        const auto result = simulator.run(request);
        const auto t1 = Clock::now();
        out.uops = result.instructions;
        out.streamUopsPerSec = std::max(
            out.streamUopsPerSec,
            result.instructions / seconds(t0, t1));
    }
}

/** Batch: materialize the trace once, then time pure replay. */
void
measureBatch(const sim::Session &simulator, PointResult &out,
             int reps)
{
    const auto request = requestFor(simulator, out.point);
    cpu::Trace trace;
    simulator.run(request, &trace);
    VEGETA_ASSERT(trace.size() == out.uops,
                  "batch and streaming runs generated different "
                  "op counts");
    for (int r = 0; r < reps; ++r) {
        const auto t0 = Clock::now();
        const auto result = simulator.replay(trace, request);
        const auto t1 = Clock::now();
        VEGETA_ASSERT(result.instructions == trace.size(),
                      "replay consumed a different op count");
        out.batchUopsPerSec = std::max(
            out.batchUopsPerSec, trace.size() / seconds(t0, t1));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Hidden pool-worker re-entry: the pooled-sweep measurement forks
    // this binary back into itself with a shard file.
    if (argc > 1 && std::string(argv[1]) == "worker")
        return sim::poolWorkerMain(
            std::vector<std::string>(argv + 2, argv + argc));

    bool smoke = false;
    std::string out_path = "BENCH_replay.json";
    std::string baseline_path;
    std::string commit;
    double max_regress_pct = 30;
    double max_telemetry_overhead_pct = 2;
    u32 threads = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--baseline") {
            baseline_path = next();
        } else if (arg == "--commit") {
            commit = next();
        } else if (arg == "--max-regress") {
            max_regress_pct = std::strtod(next(), nullptr);
        } else if (arg == "--max-telemetry-overhead") {
            max_telemetry_overhead_pct = std::strtod(next(), nullptr);
        } else if (arg == "--threads") {
            const auto parsed = sim::parseU32(next());
            if (!parsed) {
                std::cerr << "bad --threads value\n";
                return 2;
            }
            threads = *parsed;
        } else {
            std::cerr << "unknown argument: " << arg << "\n"
                      << "usage: bench_replay_throughput [--smoke] "
                         "[--out FILE] [--threads N] [--commit KEY] "
                         "[--baseline FILE] [--max-regress PCT] "
                         "[--max-telemetry-overhead PCT]\n";
            return 2;
        }
    }

    const sim::Session simulator; // cache off: measure the replay
    const int reps = smoke ? 2 : 5;

    // Single-stream points: Figure 13 layer-wise patterns on the
    // flagship sparse engine plus the dense baseline.  Smoke mode
    // measures the SAME points with fewer repetitions, so its
    // geomean is directly comparable to a committed full-mode
    // baseline (the regression gate depends on this).
    std::vector<Point> points;
    const std::vector<kernels::GemmDims> sizes = {{128, 128, 512},
                                                  {256, 256, 1024}};
    for (const auto &dims : sizes) {
        std::ostringstream label;
        label << dims.m << "x" << dims.n << "x" << dims.k;
        for (u32 pattern : {4u, 2u, 1u})
            points.push_back({label.str(), dims, "VEGETA-S-16-2",
                              pattern});
        points.push_back({label.str(), dims, "VEGETA-D-1-2", 4});
    }

    const double calibration = calibrationMops();

    // Phase 1 -- streaming only.  Nothing up to the RSS snapshot
    // below materializes a trace, so the snapshot is the streaming
    // path's true peak, including one deliberately long stream.
    std::vector<PointResult> results;
    for (const auto &point : points) {
        results.push_back({point, 0, 0, 0});
        measureStream(simulator, results.back(), reps);
    }
    const Point big_point{"memory-probe",
                          smoke ? kernels::GemmDims{256, 256, 1024}
                                : kernels::GemmDims{512, 512, 4096},
                          "VEGETA-S-16-2", 1};
    PointResult big{big_point, 0, 0, 0};
    measureStream(simulator, big, 1);
    const u64 stream_peak_rss = peakRssBytes();

    // Phase 2 -- batch replay (materializes every trace, including
    // the long one): the RSS delta against the snapshot above is the
    // memory the streaming path no longer pays.
    for (auto &r : results)
        measureBatch(simulator, r, reps);
    measureBatch(simulator, big, 1);
    const u64 batch_peak_rss = peakRssBytes();

    std::vector<double> batch_rates, stream_rates;
    for (const auto &r : results) {
        batch_rates.push_back(r.batchUopsPerSec);
        stream_rates.push_back(r.streamUopsPerSec);
        std::printf("%-14s %-14s N=%u  %8zu uops  batch %7.2f "
                    "Muops/s  stream %7.2f Muops/s\n",
                    r.point.label.c_str(), r.point.engine.c_str(),
                    r.point.pattern, static_cast<size_t>(r.uops),
                    r.batchUopsPerSec / 1e6,
                    r.streamUopsPerSec / 1e6);
    }
    std::printf("memory probe (%s, %zu uops): streaming peak RSS "
                "%.1f MiB, after materializing %.1f MiB\n",
                big.point.label.c_str(), static_cast<size_t>(big.uops),
                stream_peak_rss / 1048576.0,
                batch_peak_rss / 1048576.0);
    const double batch_geomean = geomean(batch_rates);
    const double stream_geomean = geomean(stream_rates);

    // Lane-batched replay rows: K copies of each point's trace on a
    // K-lane LaneReplayer, so the row family shows how interleaving K
    // independent streams through one hot loop scales on THIS host
    // (K=1 doubles as the strip-scheduler overhead check against the
    // single-stream batch row).  Session::defaultLaneWidth() is read
    // off this trajectory.
    struct LanePoint
    {
        u32 lanes;
        double uopsPerSec;
        double speedupVsSingle;
    };
    std::vector<LanePoint> lane_points;
    {
        // The smaller GEMM size keeps the K=8 row affordable while
        // still covering all three sparsity patterns + dense.
        const std::size_t lane_point_count =
            std::min<std::size_t>(points.size(), 4);
        std::vector<cpu::Trace> lane_traces;
        std::vector<engine::EngineConfig> lane_engines;
        for (std::size_t p = 0; p < lane_point_count; ++p) {
            const auto request = requestFor(simulator, points[p]);
            cpu::Trace trace;
            simulator.run(request, &trace);
            lane_traces.push_back(std::move(trace));
            const auto engine_config =
                engine::configByName(points[p].engine);
            VEGETA_ASSERT(engine_config.has_value(),
                          "unknown bench engine");
            lane_engines.push_back(*engine_config);
        }
        const int lane_reps = smoke ? 1 : 2;
        for (const u32 k : {1u, 2u, 4u, 8u}) {
            std::vector<double> rates;
            for (std::size_t p = 0; p < lane_traces.size(); ++p) {
                const std::vector<cpu::LaneReplayer::LaneSpec> specs(
                    k, {{}, lane_engines[p]});
                cpu::LaneReplayer replayer(specs);
                const std::vector<const cpu::Trace *> lanes(
                    k, &lane_traces[p]);
                double best = 0;
                for (int r = 0; r < lane_reps; ++r) {
                    const auto t0 = Clock::now();
                    const auto lane_results = replayer.replay(lanes);
                    const auto t1 = Clock::now();
                    u64 uops = 0;
                    for (const auto &res : lane_results) {
                        uops += res.retiredOps;
                        VEGETA_ASSERT(
                            res.totalCycles ==
                                lane_results[0].totalCycles,
                            "identical lanes must finish in "
                            "identical cycles");
                    }
                    best = std::max(best, uops / seconds(t0, t1));
                }
                rates.push_back(best);
            }
            const double rate = geomean(rates);
            lane_points.push_back({k, rate, rate / batch_geomean});
            std::printf("lanes: K=%u  %7.2f Muops/s  (%.2fx single-"
                        "stream batch)\n",
                        k, rate / 1e6, rate / batch_geomean);
        }
    }

    // Telemetry-overhead row: the same batch replay measured with
    // span tracing armed vs disarmed, arms interleaved per rep so
    // frequency drift hits both equally.  The disarmed arm is what a
    // VEGETA_NO_TELEMETRY build pays everywhere (in that build both
    // arms are no-ops and the row pins the macro path at ~0%); the
    // armed arm bounds the cost of running with --trace-out.
    double telemetry_disarmed = 0, telemetry_traced = 0;
    double telemetry_overhead_pct = 0;
    {
        const std::size_t overhead_points =
            std::min<std::size_t>(results.size(), 4);
        std::vector<PointResult> disarmed_arm, traced_arm;
        for (std::size_t p = 0; p < overhead_points; ++p) {
            // Carry the measured uop count over: measureBatch asserts
            // its trace against it.
            disarmed_arm.push_back(
                {results[p].point, results[p].uops, 0, 0});
            traced_arm.push_back(
                {results[p].point, results[p].uops, 0, 0});
        }
        // More best-of reps than the throughput rows: the gate
        // compares two near-identical rates, so both arms need tight
        // maxima or scheduler noise masquerades as overhead.
        const int overhead_reps = std::max(reps, 4);
        for (int r = 0; r < overhead_reps; ++r) {
            telemetry::setTraceEnabled(false);
            for (auto &arm : disarmed_arm)
                measureBatch(simulator, arm, 1);
            telemetry::setTraceEnabled(true);
            for (auto &arm : traced_arm)
                measureBatch(simulator, arm, 1);
        }
        telemetry::setTraceEnabled(false);
        telemetry::clearTrace();
        std::vector<double> disarmed_rates, traced_rates;
        for (std::size_t p = 0; p < overhead_points; ++p) {
            disarmed_rates.push_back(disarmed_arm[p].batchUopsPerSec);
            traced_rates.push_back(traced_arm[p].batchUopsPerSec);
        }
        telemetry_disarmed = geomean(disarmed_rates);
        telemetry_traced = geomean(traced_rates);
        if (telemetry_disarmed > 0)
            telemetry_overhead_pct =
                (1 - telemetry_traced / telemetry_disarmed) * 100;
        std::printf("telemetry: disarmed %.2f Muops/s, traced %.2f "
                    "Muops/s, overhead %.2f%%\n",
                    telemetry_disarmed / 1e6, telemetry_traced / 1e6,
                    telemetry_overhead_pct);
    }

    // Threaded sweep over the Figure 13 grid of the quick workloads.
    const std::vector<std::string> grid_workloads =
        smoke ? std::vector<std::string>{"quick-small"}
              : std::vector<std::string>{"quick-small", "quick-square",
                                         "quick-deep"};
    const std::vector<std::string> grid_engines = {
        "VEGETA-D-1-2", "VEGETA-S-1-2", "VEGETA-S-16-2"};
    const auto grid =
        sim::figure13Grid(simulator, grid_workloads, grid_engines);
    const u32 sweep_threads =
        threads != 0
            ? threads
            : std::max(1u, std::thread::hardware_concurrency());
    simulator.runBatch(grid, sweep_threads); // warm-up
    double sweep_secs = 0;
    u64 sweep_uops = 0;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = Clock::now();
        const auto sweep_results = simulator.runBatch(grid,
                                                      sweep_threads);
        const auto t1 = Clock::now();
        u64 uops = 0;
        for (const auto &res : sweep_results)
            uops += res.instructions;
        const double secs = seconds(t0, t1);
        if (sweep_secs == 0 || secs < sweep_secs) {
            sweep_secs = secs;
            sweep_uops = uops;
        }
    }
    std::printf("sweep: %zu requests, %u threads, %.3fs best, %.2f "
                "Muops/s\n",
                grid.size(), sweep_threads, sweep_secs,
                sweep_uops / sweep_secs / 1e6);

    // Pooled-sweep scaling row: the same grid sharded over worker
    // processes (each worker single-threaded so the row isolates
    // process-level scaling).  No cache dir: every point is a cold
    // compute, comparable across worker counts.
    struct PoolPoint
    {
        u32 workers;
        double seconds;
        double uopsPerSec;
    };
    std::vector<sim::Job> pool_jobs;
    pool_jobs.reserve(grid.size());
    for (const auto &request : grid)
        pool_jobs.push_back(sim::Job::simulate(request));
    std::vector<PoolPoint> pool_points;
    for (const u32 workers :
         smoke ? std::vector<u32>{1, 2} : std::vector<u32>{1, 2, 4}) {
        sim::PoolOptions options;
        options.workers = workers;
        options.threadsPerWorker = 1;
        // This row measures the REAL process pool; the batch-size
        // planner would otherwise route this sub-crossover grid to
        // its in-process fallback.
        options.minPooledJobs = 1;
        double best_secs = 0;
        u64 pool_uops = 0;
        const int pool_reps = smoke ? 1 : 2;
        for (int r = 0; r < pool_reps; ++r) {
            const auto t0 = Clock::now();
            const auto pooled =
                simulator.runBatchPooled(pool_jobs, options);
            const auto t1 = Clock::now();
            if (!pooled.ok) {
                std::cerr << "pooled sweep failed: " << pooled.error
                          << "\n";
                return 2;
            }
            u64 uops = 0;
            for (const auto &res : pooled.results)
                uops += res.simulation.instructions;
            const double secs = seconds(t0, t1);
            if (best_secs == 0 || secs < best_secs) {
                best_secs = secs;
                pool_uops = uops;
            }
        }
        pool_points.push_back(
            {workers, best_secs, pool_uops / best_secs});
        std::printf("pool : %zu requests, %u workers, %.3fs best, "
                    "%.2f Muops/s\n",
                    grid.size(), workers,
                    best_secs, pool_uops / best_secs / 1e6);
    }

    // Measured pool crossover: the smallest unique-job batch where
    // sharding over 2 worker processes actually beats running the
    // batch in-process.  defaultPoolCrossoverJobs() is pinned to this
    // measurement's committed trajectory value (0 = the pool never
    // won at any tested size on this host).
    u32 measured_crossover = 0;
    {
        const std::vector<std::size_t> batch_sizes =
            smoke ? std::vector<std::size_t>{2, 4}
                  : std::vector<std::size_t>{2, 4, 8, 16};
        const int crossover_reps = smoke ? 1 : 2;
        for (const std::size_t size : batch_sizes) {
            if (size > pool_jobs.size())
                break;
            const std::vector<sim::Job> subset(
                pool_jobs.begin(),
                pool_jobs.begin() +
                    static_cast<std::ptrdiff_t>(size));
            double inproc_secs = 0, pooled_secs = 0;
            for (int r = 0; r < crossover_reps; ++r) {
                // Fresh session per rep: its in-memory result cache
                // must not turn later reps into lookups.
                const auto t0 = Clock::now();
                const sim::Session cold;
                cold.runBatch(subset, 1);
                const auto t1 = Clock::now();
                const double secs = seconds(t0, t1);
                if (inproc_secs == 0 || secs < inproc_secs)
                    inproc_secs = secs;
            }
            sim::PoolOptions options;
            options.workers = 2;
            options.threadsPerWorker = 1;
            options.minPooledJobs = 1; // force the real pool
            for (int r = 0; r < crossover_reps; ++r) {
                const auto t0 = Clock::now();
                const auto pooled =
                    simulator.runBatchPooled(subset, options);
                const auto t1 = Clock::now();
                if (!pooled.ok) {
                    std::cerr << "crossover pool run failed: "
                              << pooled.error << "\n";
                    return 2;
                }
                const double secs = seconds(t0, t1);
                if (pooled_secs == 0 || secs < pooled_secs)
                    pooled_secs = secs;
            }
            std::printf("crossover: %3zu jobs  in-process %.3fs  "
                        "pooled %.3fs\n",
                        size, inproc_secs, pooled_secs);
            if (pooled_secs < inproc_secs) {
                measured_crossover = static_cast<u32>(size);
                break;
            }
        }
        if (measured_crossover != 0)
            std::printf("crossover: pool wins from %u unique jobs "
                        "(planner default %u)\n",
                        measured_crossover,
                        sim::defaultPoolCrossoverJobs());
        else
            std::printf("crossover: pool never won at tested sizes "
                        "(planner default %u)\n",
                        sim::defaultPoolCrossoverJobs());
    }

    // One trajectory entry, compact (a single line) so the committed
    // file stays an append-only, diff-friendly series.
    if (commit.empty())
        commit = bench::gitShortHead();
    std::ostringstream entry;
    entry << "{\"commit\": \"" << commit << "\", \"mode\": \""
          << (smoke ? "smoke" : "full")
          << "\", \"calibration_mops\": " << calibration
          << ", \"single_stream\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        entry << (i ? ", " : "") << "{\"workload\": \"" << r.point.label
              << "\", \"engine\": \"" << r.point.engine
              << "\", \"pattern\": " << r.point.pattern
              << ", \"uops\": " << r.uops
              << ", \"batch_uops_per_sec\": " << r.batchUopsPerSec
              << ", \"stream_uops_per_sec\": " << r.streamUopsPerSec
              << "}";
    }
    entry << "], \"single_stream_uops_per_sec_geomean\": "
          << batch_geomean << ", \"stream_uops_per_sec_geomean\": "
          << stream_geomean << ", \"lane_replay\": [";
    for (std::size_t i = 0; i < lane_points.size(); ++i)
        entry << (i ? ", " : "") << "{\"lanes\": "
              << lane_points[i].lanes << ", \"uops_per_sec\": "
              << lane_points[i].uopsPerSec
              << ", \"speedup_vs_single\": "
              << lane_points[i].speedupVsSingle << "}";
    entry << "], \"sweep\": {\"requests\": "
          << grid.size() << ", \"threads\": " << sweep_threads
          << ", \"seconds\": " << sweep_secs
          << ", \"uops_per_sec\": " << sweep_uops / sweep_secs
          << "}, \"pool_sweep\": [";
    for (std::size_t i = 0; i < pool_points.size(); ++i)
        entry << (i ? ", " : "") << "{\"workers\": "
              << pool_points[i].workers
              << ", \"seconds\": " << pool_points[i].seconds
              << ", \"uops_per_sec\": " << pool_points[i].uopsPerSec
              << "}";
    entry << "], \"pool_crossover_unique_jobs\": "
          << sim::defaultPoolCrossoverJobs()
          << ", \"pool_crossover_measured_jobs\": "
          << measured_crossover
          << ", \"memory_probe_uops\": " << big.uops
          << ", \"stream_peak_rss_bytes\": " << stream_peak_rss
          << ", \"batch_peak_rss_bytes\": " << batch_peak_rss
          << ", \"telemetry_overhead\": {\"telemetry_build\": "
#ifdef VEGETA_NO_TELEMETRY
          << "false"
#else
          << "true"
#endif
          << ", \"disarmed_uops_per_sec\": " << telemetry_disarmed
          << ", \"traced_uops_per_sec\": " << telemetry_traced
          << ", \"overhead_pct\": " << telemetry_overhead_pct << "}}";

    // Snapshot the baseline BEFORE rewriting --out, so gating still
    // compares against the previous entry when both name the same
    // file.
    const std::string baseline_text =
        baseline_path.empty() ? "" : readFileText(baseline_path);

    // Replace only this bench's fields: bench_service may have
    // written a "service" row family into the same commit's entry,
    // which a replay re-run must carry over, not clobber.
    std::string merged_entry = entry.str();
    for (const auto &old : trajectoryEntries(readFileText(out_path))) {
        if (entryCommit(old) != commit)
            continue;
        const std::string service =
            bench::extractEntryField(old, "service");
        if (service.empty())
            continue;
        // Not our row family: refuse to clobber (duplicate
        // same-commit entries disagreeing about "service" would
        // otherwise silently last-win here).
        std::string conflict;
        merged_entry = bench::upsertEntryField(
            merged_entry, "service", service, /*owned=*/false,
            &conflict);
        if (!conflict.empty()) {
            std::cerr << "trajectory merge failed: " << conflict
                      << "\n";
            return 2;
        }
    }
    std::size_t total_entries = 0;
    if (!bench::mergeTrajectoryEntry(out_path, commit, merged_entry,
                                     &total_entries)) {
        std::cerr << "cannot write " << out_path << "\n";
        return 2;
    }
    std::printf("wrote %s (%zu entries; geomean: batch %.2f, stream "
                "%.2f Muops/s)\n",
                out_path.c_str(), total_entries, batch_geomean / 1e6,
                stream_geomean / 1e6);

    if (!baseline_path.empty()) {
        const std::string &text = baseline_text;
        if (text.empty()) {
            std::cerr << "cannot read baseline " << baseline_path
                      << "\n";
            return 2;
        }
        // Gate against the LATEST entry of the committed trajectory
        // (an old single-point baseline converts to one entry).
        const auto base_entries = trajectoryEntries(text);
        if (base_entries.empty()) {
            std::cerr << baseline_path
                      << " is not a replay trajectory/baseline\n";
            return 2;
        }
        const std::string &latest = base_entries.back();
        double base_rate = 0, base_calibration = 0;
        if (!findJsonNumber(latest,
                            "single_stream_uops_per_sec_geomean",
                            &base_rate)) {
            std::cerr << "baseline has no "
                         "single_stream_uops_per_sec_geomean\n";
            return 2;
        }
        double scale = 1;
        if (findJsonNumber(latest, "calibration_mops",
                           &base_calibration) &&
            base_calibration > 0 && calibration > 0) {
            scale = calibration / base_calibration;
            scale = std::min(4.0, std::max(0.25, scale));
        }
        const double floor =
            base_rate * scale * (1 - max_regress_pct / 100);
        std::printf("regression gate vs entry '%s': %.2f Muops/s vs "
                    "floor %.2f (baseline %.2f x machine scale "
                    "%.2f)\n",
                    entryCommit(latest).c_str(), batch_geomean / 1e6,
                    floor / 1e6, base_rate / 1e6, scale);
        if (batch_geomean < floor) {
            std::cerr << "FAIL: single-stream replay throughput "
                         "regressed more than "
                      << max_regress_pct << "%\n";
            return 1;
        }
    }
    if (telemetry_overhead_pct > max_telemetry_overhead_pct) {
        std::cerr << "FAIL: telemetry overhead "
                  << telemetry_overhead_pct << "% exceeds the "
                  << max_telemetry_overhead_pct << "% gate\n";
        return 1;
    }
    return 0;
}
