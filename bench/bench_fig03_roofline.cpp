/**
 * @file
 * Regenerates Figure 3: effective compute throughput of dense/sparse
 * vector/matrix engines vs density (roofline model, 64/512 GFLOPS,
 * 94 GB/s), through the facade's fig3-roofline analytical backend.
 */

#include <iostream>

#include "sim/session.hpp"

int
main()
{
    using namespace vegeta;

    std::cout << "Figure 3: effective throughput (TFLOPS) vs density\n"
              << "Roofline: vector 64 GFLOPS, matrix 512 GFLOPS, "
                 "memory 94 GB/s; conv layer K=64 C=64 56x56 3x3\n\n";

    const sim::Session simulator;
    sim::AnalyticalRequest request;
    request.model = "fig3-roofline";
    const auto result = simulator.analyze(request);
    result.table().print(std::cout);

    std::cout << "\nPaper shape checks:\n";
    for (const auto &note : result.notes)
        std::cout << "  - " << note << "\n";
    return 0;
}
