/**
 * @file
 * Regenerates Figure 3: effective compute throughput of dense/sparse
 * vector/matrix engines vs density (roofline model, 64/512 GFLOPS,
 * 94 GB/s).
 */

#include <iostream>

#include "common/table.hpp"
#include "model/roofline.hpp"

int
main()
{
    using namespace vegeta;

    std::cout << "Figure 3: effective throughput (TFLOPS) vs density\n"
              << "Roofline: vector 64 GFLOPS, matrix 512 GFLOPS, "
                 "memory 94 GB/s; conv layer K=64 C=64 56x56 3x3\n\n";

    Table table({"density_%", "dense_vector", "sparse_vector",
                 "dense_matrix", "sparse_matrix"});
    for (const auto &p : model::figure3Series(
             {}, {64, 64, 56, 56, 3, 3},
             {0.01, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70,
              0.80, 0.90, 0.95, 1.00})) {
        table.row()
            .cell(p.density * 100.0, 0)
            .cell(p.denseVectorTflops, 4)
            .cell(p.sparseVectorTflops, 4)
            .cell(p.denseMatrixTflops, 4)
            .cell(p.sparseMatrixTflops, 4);
    }
    table.print(std::cout);

    std::cout << "\nPaper shape checks:\n"
              << "  - at 100% density dense == sparse per engine class\n"
              << "  - sparse matrix plateaus at 0.512 TFLOPS until "
                 "memory bound\n"
              << "  - sparse engines >> dense engines at low density\n";
    return 0;
}
