/**
 * @file
 * Regenerates Figure 4: executed-instruction count ratio and runtime
 * ratio of a vector engine over a matrix engine on square GEMMs,
 * through the facade's fig4-vector-vs-matrix analytical backend.
 */

#include <iostream>

#include "sim/session.hpp"

int
main()
{
    using namespace vegeta;

    std::cout << "Figure 4: vector engine vs matrix engine on GEMMs "
                 "with equal-sized dimensions\n\n";

    const sim::Session simulator;
    sim::AnalyticalRequest request;
    request.model = "fig4-vector-vs-matrix";
    const auto result = simulator.analyze(request);
    result.table().print(std::cout);

    std::cout << "\nPaper reports both ratios in the ~20-60 band, "
                 "growing with the dimension; see EXPERIMENTS.md for "
                 "the measured-vs-paper discussion.\n";
    return 0;
}
