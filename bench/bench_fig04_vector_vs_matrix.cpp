/**
 * @file
 * Regenerates Figure 4: executed-instruction count ratio and runtime
 * ratio of a vector engine over a matrix engine on square GEMMs.
 */

#include <iostream>

#include "common/table.hpp"
#include "model/vector_vs_matrix.hpp"

int
main()
{
    using namespace vegeta;

    std::cout << "Figure 4: vector engine vs matrix engine on GEMMs "
                 "with equal-sized dimensions\n\n";

    Table table({"dim", "vector_instrs", "matrix_instrs", "instr_ratio",
                 "vector_cycles", "matrix_cycles", "runtime_ratio"});
    for (const auto &p : model::figure4Series({32, 64, 128})) {
        table.row()
            .cell(static_cast<unsigned long long>(p.dim))
            .cell(static_cast<unsigned long long>(p.vectorInstructions))
            .cell(static_cast<unsigned long long>(p.matrixInstructions))
            .cell(p.instructionRatio(), 1)
            .cell(static_cast<unsigned long long>(p.vectorCycles))
            .cell(static_cast<unsigned long long>(p.matrixCycles))
            .cell(p.runtimeRatio(), 1);
    }
    table.print(std::cout);

    std::cout << "\nPaper reports both ratios in the ~20-60 band, "
                 "growing with the dimension; see EXPERIMENTS.md for "
                 "the measured-vs-paper discussion.\n";
    return 0;
}
