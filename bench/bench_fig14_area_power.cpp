/**
 * @file
 * Regenerates Figure 14: area and power normalized to RASA-SM plus
 * maximum frequency for every Table III design (component-level
 * analytical model standing in for the paper's RTL synthesis -- see
 * DESIGN.md for the substitution).
 */

#include <iostream>

#include "common/table.hpp"
#include "engine/area_model.hpp"

int
main()
{
    using namespace vegeta;
    using namespace vegeta::engine;

    std::cout << "Figure 14: area/power normalized to RASA-SM "
                 "(VEGETA-D-1-1) and max frequency\n\n";

    Table table({"engine", "norm_area", "norm_power", "max_freq_GHz"});
    for (const auto &row : figure14Series(allTableIIIConfigs())) {
        table.row()
            .cell(row.name)
            .cell(row.normalizedArea, 3)
            .cell(row.normalizedPower, 3)
            .cell(row.maxFrequencyGhz, 2);
    }
    table.print(std::cout);

    std::cout << "\nComponent breakdown (area units):\n\n";
    Table parts({"engine", "MACs", "PE_overhead", "input_buffers",
                 "sparse_extras", "total"});
    for (const auto &cfg : allTableIIIConfigs()) {
        const auto est = estimatePhysical(cfg);
        parts.row()
            .cell(cfg.name)
            .cell(est.macArea, 1)
            .cell(est.peOverheadArea, 1)
            .cell(est.inputBufferArea, 1)
            .cell(est.sparseExtrasArea, 1)
            .cell(est.areaUnits, 1);
    }
    parts.print(std::cout);

    std::cout << "\nPaper targets: worst sparse overhead ~6% (S-1-2); "
                 "S-8-2/S-16-2 below RASA-SM; power overheads "
                 "17/8/4/3/1% for alpha 1/2/4/8/16; all designs meet "
              << kEvaluationFrequencyGhz << " GHz.\n";
    return 0;
}
