/**
 * @file
 * Regenerates Figure 14: area and power normalized to RASA-SM plus
 * maximum frequency for every Table III design, through the facade's
 * fig14-area-power / fig14-area-breakdown analytical backends
 * (component-level model standing in for the paper's RTL synthesis --
 * see DESIGN.md for the substitution).
 */

#include <iostream>

#include "sim/session.hpp"

int
main()
{
    using namespace vegeta;

    std::cout << "Figure 14: area/power normalized to RASA-SM "
                 "(VEGETA-D-1-1) and max frequency\n\n";

    const sim::Session simulator;
    sim::AnalyticalRequest request;
    request.model = "fig14-area-power";
    const auto result = simulator.analyze(request);
    result.table().print(std::cout);

    std::cout << "\nComponent breakdown (area units):\n\n";
    request.model = "fig14-area-breakdown";
    simulator.analyze(request).table().print(std::cout);

    std::cout << "\n";
    for (const auto &note : result.notes)
        std::cout << note << "\n";
    return 0;
}
