/**
 * @file
 * Regenerates Figure 13: normalized runtime of every evaluated engine
 * on the Table IV layers with 4:4 / 2:4 / 1:4 layer-wise sparsity
 * (core 2 GHz, engines 0.5 GHz, data prefetched to L2).
 *
 * Runtimes are normalized to the longest run (GPT-L3 on RASA-SM with
 * the dense pattern), exactly as in the paper.  The grid executes on
 * Session::runBatch across all hardware threads (results
 * are bit-identical to a single-threaded run, cache on or off).  Pass
 * --quick for a reduced workload set, --threads N to override the
 * pool size, --no-cache to disable result caching (the geomean
 * summaries re-simulate their baselines instead of reusing the grid's
 * results), and --cache-dir DIR to attach the persistent result
 * cache (a second run replays nothing).
 */

#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "sim/session.hpp"

int
main(int argc, char **argv)
{
    using namespace vegeta;

    bool quick = false;
    bool use_cache = true;
    std::string cache_dir;
    u32 threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--no-cache") == 0) {
            use_cache = false;
        } else if (std::strcmp(argv[i], "--cache-dir") == 0 &&
                   i + 1 < argc) {
            cache_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            const auto parsed = sim::parseU32(argv[++i]);
            if (!parsed || *parsed == 0) {
                std::cerr << "error: --threads expects a positive "
                             "integer, got '"
                          << argv[i] << "'\n";
                return 1;
            }
            threads = *parsed;
        } else {
            std::cerr << "usage: bench_fig13_runtime [--quick] "
                         "[--threads N] [--no-cache] "
                         "[--cache-dir DIR]\n";
            return std::strcmp(argv[i], "--help") == 0 ? 0 : 1;
        }
    }

    sim::Session simulator;
    if (use_cache)
        simulator.enableCache();
    if (!cache_dir.empty() &&
        !simulator.attachDiskCache(cache_dir)->ok()) {
        std::cerr << "cannot open cache dir: " << cache_dir << "\n";
        return 1;
    }
    const auto workloads =
        simulator.workloads().group(quick ? "quick" : "tableIV");
    std::vector<std::string> workload_names;
    for (const auto &w : workloads)
        workload_names.push_back(w.name);
    const auto engine_names = simulator.engines().names();

    const u32 pool =
        threads != 0
            ? threads
            : std::max(1u, std::thread::hardware_concurrency());
    std::cout << "Figure 13: normalized runtime, "
              << (quick ? "quick" : "full Table IV") << " workloads ("
              << pool << " sweep threads)\n"
              << "(engines at 0.5 GHz via 4x clock divider; lower is "
                 "better; normalized to the longest run)\n\n";

    const auto grid =
        sim::figure13Grid(simulator, workload_names, engine_names);
    const auto results = simulator.runBatch(grid, threads);

    // Normalize to the longest runtime (paper: GPT-L3 on RASA-SM).
    Cycles longest = 0;
    std::string longest_label;
    for (const auto &r : results) {
        if (r.coreCycles > longest) {
            longest = r.coreCycles;
            longest_label = r.workload + " on " + r.engine;
        }
    }
    std::cout << "Longest run (normalization base): " << longest_label
              << " = " << longest << " core cycles\n\n";

    for (u32 layer_n : {4u, 2u, 1u}) {
        std::cout << "--- Layer-wise " << layer_n << ":4 sparsity ---\n";
        std::vector<std::string> headers{"engine"};
        for (const auto &name : workload_names)
            headers.push_back(name);
        Table table(headers);

        // Collect rows per engine variant (name + OF flag).
        std::vector<std::pair<std::string, bool>> variants;
        for (const auto &e : simulator.engines().configs()) {
            variants.emplace_back(e.name, false);
            if (e.sparse)
                variants.emplace_back(e.name, true);
        }
        for (const auto &[name, of] : variants) {
            table.row().cell(of ? name + " +OF" : name);
            for (const auto &workload : workload_names) {
                for (const auto &r : results) {
                    if (r.engine == name && r.workload == workload &&
                        r.layerN == layer_n &&
                        r.outputForwarding == of) {
                        table.cell(static_cast<double>(r.coreCycles) /
                                       static_cast<double>(longest),
                                   4);
                    }
                }
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // Geomean speed-ups vs the RASA-DM dense baseline (headline).
    std::cout << "Geomean speed-up of VEGETA-S-16-2 (+OF) over "
                 "RASA-DM (VEGETA-D-1-2):\n";
    Table summary({"pattern", "speedup", "paper"});
    const struct
    {
        u32 n;
        const char *paper;
    } rows[] = {{4, "1.09x"}, {2, "2.20x"}, {1, "3.74x"}};
    for (const auto &r : rows) {
        const double s = sim::geomeanSpeedup(
            simulator, workload_names, r.n, "VEGETA-S-16-2",
            /*output_forwarding=*/true, "VEGETA-D-1-2", threads);
        summary.row()
            .cell(std::to_string(r.n) + ":4")
            .cell(s, 2)
            .cell(r.paper);
    }
    summary.print(std::cout);

    if (const auto &cache = simulator.cache()) {
        const auto stats = cache->stats();
        std::cout << "\nResult cache: " << stats.insertions
                  << " unique simulations, " << stats.hits
                  << " hits (geomean summaries reuse the grid's "
                     "runs)\n";
    }
    if (const auto &disk = simulator.diskCache()) {
        const auto stats = disk->stats();
        std::cout << "Persistent cache: " << stats.hits << " hits, "
                  << stats.insertions << " new entries ("
                  << simulator.simulationsPerformed()
                  << " traces actually simulated)\n";
    }
    return 0;
}
