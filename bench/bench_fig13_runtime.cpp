/**
 * @file
 * Regenerates Figure 13: normalized runtime of every evaluated engine
 * on the Table IV layers with 4:4 / 2:4 / 1:4 layer-wise sparsity
 * (core 2 GHz, engines 0.5 GHz, data prefetched to L2).
 *
 * Runtimes are normalized to the longest run (GPT-L3 on RASA-SM with
 * the dense pattern), exactly as in the paper.  Pass --quick for a
 * reduced workload set.
 */

#include <cstring>
#include <iostream>
#include <map>

#include "common/table.hpp"
#include "kernels/driver.hpp"

int
main(int argc, char **argv)
{
    using namespace vegeta;
    using namespace vegeta::kernels;

    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    const auto workloads = quick ? quickWorkloads() : tableIVWorkloads();
    const auto engines = engine::allEvaluatedConfigs();

    std::cout << "Figure 13: normalized runtime, "
              << (quick ? "quick" : "full Table IV") << " workloads\n"
              << "(engines at 0.5 GHz via 4x clock divider; lower is "
                 "better; normalized to the longest run)\n\n";

    const auto measurements = figure13Sweep(workloads, engines);

    // Normalize to the longest runtime (paper: GPT-L3 on RASA-SM).
    Cycles longest = 0;
    std::string longest_label;
    for (const auto &m : measurements) {
        if (m.coreCycles > longest) {
            longest = m.coreCycles;
            longest_label = m.workload + " on " + m.engineName;
        }
    }
    std::cout << "Longest run (normalization base): " << longest_label
              << " = " << longest << " core cycles\n\n";

    for (u32 layer_n : {4u, 2u, 1u}) {
        std::cout << "--- Layer-wise " << layer_n << ":4 sparsity ---\n";
        std::vector<std::string> headers{"engine"};
        for (const auto &w : workloads)
            headers.push_back(w.name);
        Table table(headers);

        // Collect rows per engine variant (name + OF flag).
        std::vector<std::pair<std::string, bool>> variants;
        for (const auto &e : engines) {
            variants.emplace_back(e.name, false);
            if (e.sparse)
                variants.emplace_back(e.name, true);
        }
        for (const auto &[name, of] : variants) {
            table.row().cell(of ? name + " +OF" : name);
            for (const auto &w : workloads) {
                for (const auto &m : measurements) {
                    if (m.engineName == name && m.workload == w.name &&
                        m.layerN == layer_n &&
                        m.outputForwarding == of) {
                        table.cell(static_cast<double>(m.coreCycles) /
                                       static_cast<double>(longest),
                                   4);
                    }
                }
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // Geomean speed-ups vs the RASA-DM dense baseline (headline).
    std::cout << "Geomean speed-up of VEGETA-S-16-2 (+OF) over "
                 "RASA-DM (VEGETA-D-1-2):\n";
    Table summary({"pattern", "speedup", "paper"});
    const struct
    {
        u32 n;
        const char *paper;
    } rows[] = {{4, "1.09x"}, {2, "2.20x"}, {1, "3.74x"}};
    for (const auto &r : rows) {
        const double s = geomeanSpeedupVsDenseBaseline(
            workloads, r.n, engine::vegetaS162(), true);
        summary.row()
            .cell(std::to_string(r.n) + ":4")
            .cell(s, 2)
            .cell(r.paper);
    }
    summary.print(std::cout);
    return 0;
}
