/**
 * @file
 * Regenerates Table III: the VEGETA-D / VEGETA-S design space, plus
 * the per-design stage latencies and initiation intervals implied by
 * Section V-C.
 */

#include <iostream>

#include "common/table.hpp"
#include "engine/pipeline.hpp"
#include "sim/registry.hpp"

int
main()
{
    using namespace vegeta;
    using namespace vegeta::engine;

    // The design points come from the sim facade's engine registry,
    // not a hand-wired table.
    const auto table_iii =
        sim::EngineRegistry::builtin().tableIIIConfigs();

    std::cout << "Table III: VEGETA engine design space (all keep "
              << kTotalMacs << " MACs)\n\n";

    Table table({"engine", "Nrows", "Ncols", "MACs/PE", "inputs/PE",
                 "broadcast(a)", "drain", "sparsity", "prior work"});
    for (const auto &cfg : table_iii) {
        table.row()
            .cell(cfg.name)
            .cell(static_cast<int>(cfg.nRows()))
            .cell(static_cast<int>(cfg.nCols()))
            .cell(static_cast<int>(cfg.macsPerPe()))
            .cell(static_cast<int>(cfg.inputsPerPe()))
            .cell(static_cast<int>(cfg.alpha))
            .cell(static_cast<unsigned long long>(cfg.drainLatency()))
            .cell(cfg.sparse ? "1:4, 2:4, 4:4" : "Dense")
            .cell(cfg.priorWorkLabel);
    }
    table.print(std::cout);

    std::cout << "\nDerived pipelining behaviour (Section V-C):\n\n";
    Table stages({"engine", "WL", "FF", "FS", "DR", "isolated_latency",
                  "initiation_interval"});
    const auto instr =
        isa::makeTileGemm(isa::treg(5), isa::treg(4), isa::treg(0));
    for (const auto &cfg : table_iii) {
        PipelineModel model(cfg);
        const auto lat = model.stages(instr);
        stages.row()
            .cell(cfg.name)
            .cell(static_cast<unsigned long long>(lat.wl))
            .cell(static_cast<unsigned long long>(lat.ff))
            .cell(static_cast<unsigned long long>(lat.fs))
            .cell(static_cast<unsigned long long>(lat.dr))
            .cell(static_cast<unsigned long long>(lat.total()))
            .cell(static_cast<unsigned long long>(
                initiationInterval(cfg)));
    }
    stages.print(std::cout);
    return 0;
}
