/**
 * @file
 * Regenerates Table III: the VEGETA-D / VEGETA-S design space, plus
 * the per-design stage latencies and initiation intervals implied by
 * Section V-C.  Facade-only: the design points come from the engine
 * registry and the timing numbers from the micro-latency analytical
 * backend.
 */

#include <iostream>

#include "common/table.hpp"
#include "sim/session.hpp"

int
main()
{
    using namespace vegeta;

    const sim::Session simulator;
    const auto table_iii = simulator.engines().tableIIIConfigs();

    std::cout << "Table III: VEGETA engine design space (all keep "
              << engine::kTotalMacs << " MACs)\n\n";

    Table table({"engine", "Nrows", "Ncols", "MACs/PE", "inputs/PE",
                 "broadcast(a)", "drain", "sparsity", "prior work"});
    for (const auto &cfg : table_iii) {
        table.row()
            .cell(cfg.name)
            .cell(static_cast<int>(cfg.nRows()))
            .cell(static_cast<int>(cfg.nCols()))
            .cell(static_cast<int>(cfg.macsPerPe()))
            .cell(static_cast<int>(cfg.inputsPerPe()))
            .cell(static_cast<int>(cfg.alpha))
            .cell(static_cast<unsigned long long>(cfg.drainLatency()))
            .cell(cfg.sparse ? "1:4, 2:4, 4:4" : "Dense")
            .cell(cfg.priorWorkLabel);
    }
    table.print(std::cout);

    std::cout << "\nDerived pipelining behaviour (Section V-C):\n\n";
    sim::AnalyticalRequest request;
    request.model = "micro-latency";
    const sim::AnalyticalResult stages = simulator.analyze(request);
    stages.table().print(std::cout);
    for (const auto &note : stages.notes)
        std::cout << "  " << note << "\n";
    return 0;
}
