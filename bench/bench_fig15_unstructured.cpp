/**
 * @file
 * Regenerates Figure 15: average speed-up of different sparsity
 * granularities over a dense engine at 60-95% unstructured sparsity,
 * including the area-normalized SIGMA-like unstructured engine,
 * through the facade's fig15-unstructured analytical backend.
 */

#include <cstring>
#include <iostream>

#include "sim/session.hpp"

int
main(int argc, char **argv)
{
    using namespace vegeta;

    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

    const sim::Session simulator;
    sim::AnalyticalRequest request;
    request.model = "fig15-unstructured";
    std::vector<std::string> names;
    for (const auto &w : simulator.workloads().group("tableIV"))
        names.push_back(w.name);
    if (quick)
        names.resize(3);
    request.workloads = names;

    std::cout << "Figure 15: average speed-up vs dense engine across "
                 "unstructured sparsity degrees\n"
              << "(averaged over " << names.size()
              << " Table IV layers)\n\n";

    const auto result = simulator.analyze(request);
    result.table().print(std::cout);

    std::cout << "\n";
    for (const auto &note : result.notes)
        std::cout << note << "\n";
    return 0;
}
