/**
 * @file
 * Regenerates Figure 15: average speed-up of different sparsity
 * granularities over a dense engine at 60-95% unstructured sparsity,
 * including the area-normalized SIGMA-like unstructured engine.
 */

#include <cstring>
#include <iostream>

#include "common/table.hpp"
#include "model/unstructured_analysis.hpp"

int
main(int argc, char **argv)
{
    using namespace vegeta;
    using namespace vegeta::kernels;

    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    auto workloads = tableIVWorkloads();
    if (quick)
        workloads.resize(3);

    std::cout << "Figure 15: average speed-up vs dense engine across "
                 "unstructured sparsity degrees\n"
              << "(averaged over " << workloads.size()
              << " Table IV layers; SIGMA area factor "
              << model::kSigmaAreaFactor << ")\n\n";

    Table table({"degree_%", "dense", "layer-wise", "tile-wise",
                 "pseudo-row-wise", "row-wise", "SIGMA-like"});
    for (const auto &p : model::figure15Series(workloads)) {
        table.row()
            .cell(p.degree * 100.0, 0)
            .cell(p.dense, 2)
            .cell(p.layerWise, 2)
            .cell(p.tileWise, 2)
            .cell(p.pseudoRowWise, 2)
            .cell(p.rowWise, 2)
            .cell(p.sigmaLike, 2);
    }
    table.print(std::cout);

    std::cout << "\nPaper anchors: row-wise 2.36x @ 90% and 3.28x @ "
                 "95%; layer-wise barely beats dense; SIGMA-like "
                 "overtakes row-wise only beyond ~95%.\n";
    return 0;
}
