/**
 * @file
 * Simulation-service load generator: the multi-client latency and
 * saturation bench for `simulate_cli serve` (sim/server, sim/client).
 *
 * Measures, on the quick-workload Figure 13 grid:
 *  - the COLD baseline: fork/exec of a fresh process per sweep (what
 *    every CLI invocation used to pay -- process startup, registry
 *    construction, first-touch simulation of the whole grid),
 *  - the WARM service: one in-process SimServer with pre-forked
 *    persistent workers, hit by N concurrent clients, reporting
 *    per-request p50/p99 latency and aggregate jobs/sec per client
 *    count,
 *  - a correctness judge: the client-side batch must serialize to
 *    byte-identical JSON as a local Session::runBatch of the same
 *    grid, and a repeated sweep must report zero simulations
 *    performed by the server (the whole point of staying warm).
 *
 * Results merge into the BENCH_replay.json trajectory as a "service"
 * row family inside the same-commit entry (bench/trajectory.hpp), so
 * one file carries the full perf story per PR.  With --min-speedup X
 * the run exits non-zero unless the warm service beats the cold
 * baseline by at least X at >= 4 concurrent clients.
 *
 * Usage: bench_service [--smoke] [--out FILE] [--commit KEY]
 *        [--iters N] [--service-workers K] [--min-speedup X]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "sim/client.hpp"
#include "sim/pool.hpp"
#include "sim/request.hpp"
#include "sim/result.hpp"
#include "sim/server.hpp"
#include "sim/session.hpp"

#include "trajectory.hpp"

namespace {

using namespace vegeta;
using bench::Clock;
using bench::seconds;

/** The grid every measurement (and the cold re-entry) runs. */
std::vector<sim::SimulationRequest>
serviceGrid(const sim::Session &session, bool smoke)
{
    const std::vector<std::string> workloads =
        smoke ? std::vector<std::string>{"quick-small"}
              : std::vector<std::string>{"quick-small", "quick-square",
                                         "quick-deep"};
    const std::vector<std::string> engines = {
        "VEGETA-D-1-2", "VEGETA-S-1-2", "VEGETA-S-16-2"};
    return sim::figure13Grid(session, workloads, engines);
}

/** Hidden re-entry: one full cold sweep in this fresh process. */
int
coldRunMain(bool smoke)
{
    sim::Session session;
    session.enableCache();
    const auto grid = serviceGrid(session, smoke);
    const auto results = session.runBatch(grid);
    // Fold the results into an exit condition so the sweep cannot be
    // optimized away and a broken run cannot pass silently.
    u64 uops = 0;
    for (const auto &result : results)
        uops += result.instructions;
    return uops > 0 ? 0 : 3;
}

/** p-th percentile of a sorted sample (nearest-rank). */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const auto rank = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(sorted.size()));
    return sorted[std::min(rank, sorted.size() - 1)];
}

struct WarmPoint
{
    u32 clients = 0;
    double p50Ms = 0;
    double p99Ms = 0;
    double jobsPerSec = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    // Hidden cold-baseline re-entry (fork/exec'd by the measurement
    // below): run the sweep in this fresh process and exit.
    if (argc > 1 && std::string(argv[1]) == "coldrun")
        return coldRunMain(argc > 2 &&
                           std::string(argv[2]) == "--smoke");

    bool smoke = false;
    std::string out_path = "BENCH_replay.json";
    std::string commit;
    u32 iters = 0;
    u32 service_workers = 2;
    double min_speedup = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--commit") {
            commit = next();
        } else if (arg == "--iters") {
            const auto parsed = sim::parseU32(next());
            if (!parsed || *parsed == 0) {
                std::cerr << "bad --iters value\n";
                return 2;
            }
            iters = *parsed;
        } else if (arg == "--service-workers") {
            const auto parsed = sim::parseU32(next());
            if (!parsed) {
                std::cerr << "bad --service-workers value\n";
                return 2;
            }
            service_workers = *parsed;
        } else if (arg == "--min-speedup") {
            min_speedup = std::strtod(next(), nullptr);
        } else {
            std::cerr << "unknown argument: " << arg << "\n"
                      << "usage: bench_service [--smoke] [--out FILE] "
                         "[--commit KEY] [--iters N] "
                         "[--service-workers K] [--min-speedup X]\n";
            return 2;
        }
    }
    if (iters == 0)
        iters = smoke ? 5 : 20;

    sim::Session local;
    local.enableCache();
    const auto grid = serviceGrid(local, smoke);
    std::vector<sim::Job> jobs;
    jobs.reserve(grid.size());
    for (const auto &request : grid)
        jobs.push_back(sim::Job::simulate(request));

    // Local reference for the correctness judge: the canonical JSON
    // of the whole grid, computed in this process.
    const auto local_results = local.runBatch(grid);
    std::ostringstream local_json;
    sim::writeJson(local_json, local_results);

    // --- cold baseline: a fresh process per sweep ------------------
    const std::string self = sim::currentExecutablePath();
    if (self.empty()) {
        std::cerr << "cannot resolve own executable\n";
        return 2;
    }
    const int cold_reps = smoke ? 1 : 2;
    double cold_secs = 0;
    for (int r = 0; r < cold_reps; ++r) {
        const auto t0 = Clock::now();
        const pid_t pid = fork();
        if (pid < 0) {
            std::cerr << "cannot fork cold run\n";
            return 2;
        }
        if (pid == 0) {
            if (smoke)
                execl(self.c_str(), self.c_str(), "coldrun",
                      "--smoke", static_cast<char *>(nullptr));
            else
                execl(self.c_str(), self.c_str(), "coldrun",
                      static_cast<char *>(nullptr));
            _exit(127);
        }
        int status = 0;
        waitpid(pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::cerr << "cold run failed\n";
            return 2;
        }
        const double secs = seconds(t0, Clock::now());
        if (cold_secs == 0 || secs < cold_secs)
            cold_secs = secs;
    }
    const double cold_jobs_per_sec = grid.size() / cold_secs;
    std::printf("cold : %zu requests, %.3fs per process invocation, "
                "%.2f jobs/s\n",
                grid.size(), cold_secs, cold_jobs_per_sec);

    // --- the warm service ------------------------------------------
    // Started BEFORE any client thread exists: SimServer pre-forks
    // its persistent workers at start(), which requires a
    // single-threaded process.
    char sock_dir[] = "/tmp/vegeta-bench-service-XXXXXX";
    if (!mkdtemp(sock_dir)) {
        std::cerr << "cannot create socket directory\n";
        return 2;
    }
    sim::ServerOptions server_options;
    server_options.socketPath = std::string(sock_dir) + "/bench.sock";
    server_options.serviceWorkers = service_workers;
    sim::SimServer server(server_options);
    std::string error;
    if (!server.start(&error)) {
        std::cerr << "cannot start server: " << error << "\n";
        return 2;
    }

    // --- correctness judge -----------------------------------------
    // One warm-up batch (populates the workers' caches), then: the
    // remote results must serialize byte-identically to the local
    // batch, and the REPEATED sweep must cost the server zero
    // simulations.
    {
        sim::ClientOptions client_options;
        client_options.address = server_options.socketPath;
        sim::SimClient judge(client_options);
        if (!judge.connect(&error)) {
            std::cerr << "judge cannot connect: " << error << "\n";
            return 2;
        }
        const auto first = judge.runBatch(jobs, &error);
        if (!first) {
            std::cerr << "judge batch failed: " << error << "\n";
            return 2;
        }
        std::vector<sim::SimulationResult> remote;
        remote.reserve(first->results.size());
        for (const auto &result : first->results)
            remote.push_back(result.simulation);
        std::ostringstream remote_json;
        sim::writeJson(remote_json, remote);
        if (remote_json.str() != local_json.str()) {
            std::cerr << "JUDGE FAIL: server results differ from "
                         "local Session::runBatch\n";
            return 1;
        }
        const auto second = judge.runBatch(jobs, &error);
        if (!second) {
            std::cerr << "judge repeat batch failed: " << error
                      << "\n";
            return 2;
        }
        if (second->simulationsPerformed != 0) {
            std::cerr << "JUDGE FAIL: repeated sweep performed "
                      << second->simulationsPerformed
                      << " simulations on a warm server\n";
            return 1;
        }
        std::printf("judge: remote JSON identical to local, repeat "
                    "sweep 0 simulated\n");
    }

    // --- multi-client latency/throughput sweep ---------------------
    const std::vector<u32> client_counts =
        smoke ? std::vector<u32>{1, 4} : std::vector<u32>{1, 2, 4, 8};
    std::vector<WarmPoint> warm_points;
    for (const u32 clients : client_counts) {
        std::vector<std::vector<double>> latencies(clients);
        std::atomic<bool> failed{false};
        std::mutex error_mutex;
        std::string thread_error;
        const auto t0 = Clock::now();
        std::vector<std::thread> threads;
        threads.reserve(clients);
        for (u32 c = 0; c < clients; ++c) {
            threads.emplace_back([&, c]() {
                sim::ClientOptions client_options;
                client_options.address = server_options.socketPath;
                sim::SimClient client(client_options);
                std::string client_error;
                if (!client.connect(&client_error)) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    thread_error = client_error;
                    failed = true;
                    return;
                }
                latencies[c].reserve(iters);
                for (u32 it = 0; it < iters && !failed; ++it) {
                    const auto r0 = Clock::now();
                    const auto run =
                        client.runBatch(jobs, &client_error);
                    const auto r1 = Clock::now();
                    if (!run || run->simulationsPerformed != 0) {
                        std::lock_guard<std::mutex> lock(error_mutex);
                        thread_error =
                            run ? "warm request re-simulated"
                                : client_error;
                        failed = true;
                        return;
                    }
                    latencies[c].push_back(seconds(r0, r1) * 1e3);
                }
            });
        }
        for (auto &thread : threads)
            thread.join();
        const double wall = seconds(t0, Clock::now());
        if (failed) {
            std::cerr << "client thread failed: " << thread_error
                      << "\n";
            return 2;
        }
        std::vector<double> all;
        for (const auto &per_client : latencies)
            all.insert(all.end(), per_client.begin(),
                       per_client.end());
        std::sort(all.begin(), all.end());
        WarmPoint point;
        point.clients = clients;
        point.p50Ms = percentile(all, 50);
        point.p99Ms = percentile(all, 99);
        point.jobsPerSec = static_cast<double>(clients) * iters *
                           grid.size() / wall;
        warm_points.push_back(point);
        std::printf("warm : %u client%s x %u iters, p50 %.2f ms, "
                    "p99 %.2f ms, %.0f jobs/s\n",
                    clients, clients == 1 ? " " : "s", iters,
                    point.p50Ms, point.p99Ms, point.jobsPerSec);
    }

    const auto stats = server.stats();
    server.stop();
    std::error_code ec_ignored;
    std::filesystem::remove_all(sock_dir, ec_ignored);

    // Saturation speedup at >= 4 concurrent clients vs the cold
    // per-process baseline -- the number the acceptance gate reads.
    double warm_at_4 = 0;
    for (const auto &point : warm_points)
        if (point.clients >= 4 && point.jobsPerSec > warm_at_4)
            warm_at_4 = point.jobsPerSec;
    const double speedup =
        cold_jobs_per_sec > 0 ? warm_at_4 / cold_jobs_per_sec : 0;
    std::printf("speedup: warm service at >=4 clients is %.1fx the "
                "cold per-process baseline (server performed %llu "
                "simulations total)\n",
                speedup,
                static_cast<unsigned long long>(
                    stats.simulationsPerformed));

    // --- merge the "service" row family into the trajectory --------
    if (commit.empty())
        commit = bench::gitShortHead();
    std::ostringstream service;
    service << "{\"requests\": " << grid.size()
            << ", \"service_workers\": " << service_workers
            << ", \"iters\": " << iters
            << ", \"cold_seconds_per_invocation\": " << cold_secs
            << ", \"cold_jobs_per_sec\": " << cold_jobs_per_sec
            << ", \"warm\": [";
    for (std::size_t i = 0; i < warm_points.size(); ++i)
        service << (i ? ", " : "") << "{\"clients\": "
                << warm_points[i].clients
                << ", \"p50_ms\": " << warm_points[i].p50Ms
                << ", \"p99_ms\": " << warm_points[i].p99Ms
                << ", \"jobs_per_sec\": " << warm_points[i].jobsPerSec
                << "}";
    service << "], \"speedup_vs_cold_at_4_clients\": " << speedup
            << ", \"pool_crossover_unique_jobs\": "
            << sim::defaultPoolCrossoverJobs() << "}";

    std::string entry;
    for (const auto &old :
         bench::trajectoryEntries(bench::readFileText(out_path)))
        if (bench::entryCommit(old) == commit)
            entry = old;
    if (entry.empty())
        entry = "{\"commit\": \"" + commit + "\", \"mode\": \"" +
                (smoke ? "smoke" : "full") + "\"}";
    entry = bench::upsertEntryField(entry, "service", service.str(),
                                    /*owned=*/true, nullptr);
    std::size_t total_entries = 0;
    if (!bench::mergeTrajectoryEntry(out_path, commit, entry,
                                     &total_entries)) {
        std::cerr << "cannot write " << out_path << "\n";
        return 2;
    }
    std::printf("wrote %s (%zu entries)\n", out_path.c_str(),
                total_entries);

    if (min_speedup > 0 && speedup < min_speedup) {
        std::cerr << "FAIL: warm service speedup " << speedup
                  << "x is below the required " << min_speedup
                  << "x\n";
        return 1;
    }
    return 0;
}
