/**
 * @file
 * Ablation: kernel register blocking vs output forwarding.
 *
 * The accumulate dependency (C is both source and destination of every
 * tile compute) can be hidden two ways: in software, by blocking the
 * j loop over multiple C tile registers, or in hardware, by output
 * forwarding (Section V-C).  This ablation sweeps four kernel shapes
 *
 *   - naive Listing 1 (C reloaded from memory every k iteration --
 *     the dependency goes through the store/load path, so OF cannot
 *     apply),
 *   - register-blocked with U = 1, 2, 3 C tiles (U = 1 is the
 *     dependence-limited stream OF is designed for),
 *
 * with OF off and on, across representative engines.  The whole
 * (engine x shape x OF) grid is expressed as vegeta::sim requests and
 * executed in parallel by Session::runBatch.  The paper's "another
 * 32%/37% runtime reduction from OF" corresponds to the U = 1 rows.
 */

#include <iostream>

#include "sim/session.hpp"

int
main()
{
    using namespace vegeta;

    const kernels::GemmDims dims{128, 128, 1024};
    std::cout << "Ablation: C-register blocking vs output forwarding\n"
              << "Layer " << dims.m << "x" << dims.n << "x" << dims.k
              << ", 2:4 layer-wise sparsity\n\n";

    struct KernelShape
    {
        const char *label;
        sim::KernelVariant variant;
        u32 blocking;
    };
    const KernelShape shapes[] = {
        {"naive (Listing 1)", sim::KernelVariant::Naive, 1},
        {"blocked U=1", sim::KernelVariant::Optimized, 1},
        {"blocked U=2", sim::KernelVariant::Optimized, 2},
        {"blocked U=3", sim::KernelVariant::Optimized, 3},
    };
    const char *engine_names[] = {"VEGETA-D-1-2", "VEGETA-S-1-2",
                                  "VEGETA-S-2-2", "VEGETA-S-16-2"};

    const sim::Session simulator;

    // One request per (engine, shape, OF) point; OF requests on dense
    // engines fold back to no-OF, so build them only for sparse.
    std::vector<sim::SimulationRequest> requests;
    for (const char *engine : engine_names) {
        const bool sparse = simulator.engines().find(engine)->sparse;
        for (const auto &shape : shapes) {
            for (const bool of : {false, true}) {
                if (of && !sparse)
                    continue;
                auto builder = simulator.request()
                                   .gemm(dims)
                                   .engine(engine)
                                   .pattern(2)
                                   .kernel(shape.variant)
                                   .cBlocking(shape.blocking)
                                   .outputForwarding(of);
                const auto request = builder.build();
                if (!request) {
                    std::cerr << "bad request: " << builder.error()
                              << "\n";
                    return 1;
                }
                requests.push_back(*request);
            }
        }
    }
    const auto results = simulator.runBatch(requests);

    auto cycles_of = [&](const std::string &engine,
                         const KernelShape &shape,
                         bool of) -> Cycles {
        const char *kernel = sim::kernelVariantName(shape.variant);
        for (std::size_t i = 0; i < requests.size(); ++i) {
            const auto &req = requests[i];
            if (req.engine == engine &&
                req.cBlocking == shape.blocking &&
                req.outputForwarding == of && results[i].kernel == kernel)
                return results[i].coreCycles;
        }
        return 0;
    };

    Table table({"engine", "kernel", "noOF_cycles", "OF_cycles",
                 "OF_gain_%"});
    for (const char *engine : engine_names) {
        const bool sparse = simulator.engines().find(engine)->sparse;
        for (const auto &shape : shapes) {
            const Cycles no_of = cycles_of(engine, shape, false);
            table.row().cell(engine).cell(shape.label).cell(
                static_cast<unsigned long long>(no_of));
            if (sparse) {
                const Cycles with_of = cycles_of(engine, shape, true);
                table.cell(static_cast<unsigned long long>(with_of));
                table.cell(100.0 * (1.0 - static_cast<double>(with_of) /
                                              static_cast<double>(no_of)),
                           1);
            } else {
                table.cell("-").cell("-");
            }
        }
    }
    table.print(std::cout);

    std::cout << "\nReading: OF cannot help the naive kernel (the C "
                 "dependency goes through memory), removes a large "
                 "fraction of runtime at U=1 (the paper's 32%/37% "
                 "claims), and becomes residual once software blocking "
                 "already hides the accumulate latency (U=3).\n";
    return 0;
}
