/**
 * @file
 * Ablation: kernel register blocking vs output forwarding.
 *
 * The accumulate dependency (C is both source and destination of every
 * tile compute) can be hidden two ways: in software, by blocking the
 * j loop over multiple C tile registers, or in hardware, by output
 * forwarding (Section V-C).  This ablation sweeps four kernel shapes
 *
 *   - naive Listing 1 (C reloaded from memory every k iteration --
 *     the dependency goes through the store/load path, so OF cannot
 *     apply),
 *   - register-blocked with U = 1, 2, 3 C tiles (U = 1 is the
 *     dependence-limited stream OF is designed for),
 *
 * with OF off and on, across representative engines.  The paper's
 * "another 32%/37% runtime reduction from OF" corresponds to the
 * U = 1 rows.
 */

#include <iostream>

#include "common/table.hpp"
#include "cpu/trace_cpu.hpp"
#include "kernels/gemm_kernels.hpp"

namespace {

using namespace vegeta;
using namespace vegeta::kernels;

Cycles
simulate(const engine::EngineConfig &cfg, const cpu::Trace &trace,
         bool of)
{
    cpu::CoreConfig core;
    core.outputForwarding = of;
    cpu::TraceCpu cpu_model(core, cfg);
    return cpu_model.run(trace).totalCycles;
}

} // namespace

int
main()
{
    const GemmDims dims{128, 128, 1024};
    std::cout << "Ablation: C-register blocking vs output forwarding\n"
              << "Layer " << dims.m << "x" << dims.n << "x" << dims.k
              << ", 2:4 layer-wise sparsity\n\n";

    struct KernelShape
    {
        const char *label;
        bool optimized;
        u32 blocking;
    };
    const KernelShape shapes[] = {
        {"naive (Listing 1)", false, 1},
        {"blocked U=1", true, 1},
        {"blocked U=2", true, 2},
        {"blocked U=3", true, 3},
    };

    Table table({"engine", "kernel", "noOF_cycles", "OF_cycles",
                 "OF_gain_%"});
    for (const auto &cfg :
         {engine::vegetaD12(), engine::vegetaS12(), engine::vegetaS22(),
          engine::vegetaS162()}) {
        const u32 executed_n = cfg.effectiveN(2);
        for (const auto &shape : shapes) {
            KernelOptions opts;
            opts.optimized = shape.optimized;
            opts.cBlocking = shape.blocking;
            opts.traceOnly = true;
            const auto run = runSpmmKernel(dims, executed_n, opts);

            const Cycles no_of = simulate(cfg, run.trace, false);
            table.row().cell(cfg.name).cell(shape.label).cell(
                static_cast<unsigned long long>(no_of));
            if (cfg.sparse) {
                const Cycles with_of = simulate(cfg, run.trace, true);
                table.cell(static_cast<unsigned long long>(with_of));
                table.cell(100.0 * (1.0 - static_cast<double>(with_of) /
                                              static_cast<double>(no_of)),
                           1);
            } else {
                table.cell("-").cell("-");
            }
        }
    }
    table.print(std::cout);

    std::cout << "\nReading: OF cannot help the naive kernel (the C "
                 "dependency goes through memory), removes a large "
                 "fraction of runtime at U=1 (the paper's 32%/37% "
                 "claims), and becomes residual once software blocking "
                 "already hides the accumulate latency (U=3).\n";
    return 0;
}
