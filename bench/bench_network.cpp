/**
 * @file
 * Network-level study: layer-wise vs network-wise N:M execution
 * (paper Section III-B's motivation for flexible per-layer sparsity).
 *
 * A DominoSearch-style pruner assigns different N:4 patterns per
 * layer.  Hardware that supports only one network-wide pattern must
 * run every layer at the densest N any layer needs; VEGETA executes
 * each layer at its own N.  The gap is the value of the "flexible"
 * half of flexible N:M support.
 *
 * Facade-only: the whole study is the Session's `network-policy`
 * analytical backend; nothing here wires kernels/network by hand.
 */

#include <iostream>

#include "sim/session.hpp"

int
main()
{
    using namespace vegeta;

    const sim::Session session;

    for (const char *network : {"resnet-front", "bert-encoder"}) {
        auto builder = session.job()
                           .model("network-policy")
                           .option("network", network);
        const auto job = builder.build();
        if (!job) {
            std::cerr << "bad job: " << builder.error() << "\n";
            return 1;
        }
        const auto result = session.run(*job).analysis;

        // The first note carries the network's shape (layer count,
        // MACs, per-layer patterns).
        if (!result.notes.empty())
            std::cout << "Network " << result.notes.front() << "\n\n";
        result.table().print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Reading: dense engines see no difference (they skip "
                 "nothing); an STC-like engine gains only where 2:4 "
                 "covers the mix; full VEGETA-S engines turn each "
                 "layer's own pattern into runtime, which is why "
                 "layer-wise flexibility matters (Section III-B).\n";
    return 0;
}
