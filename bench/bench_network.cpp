/**
 * @file
 * Network-level study: layer-wise vs network-wise N:M execution
 * (paper Section III-B's motivation for flexible per-layer sparsity).
 *
 * A DominoSearch-style pruner assigns different N:4 patterns per
 * layer.  Hardware that supports only one network-wide pattern must
 * run every layer at the densest N any layer needs; VEGETA executes
 * each layer at its own N.  The gap is the value of the "flexible"
 * half of flexible N:M support.
 */

#include <iostream>

#include "common/table.hpp"
#include "kernels/network.hpp"
#include "sim/registry.hpp"

int
main()
{
    using namespace vegeta;
    using namespace vegeta::kernels;

    // Representative design points, resolved by name through the sim
    // facade's registry rather than hand-wired factory calls.
    const auto engine_registry = sim::EngineRegistry::builtin();
    std::vector<engine::EngineConfig> engines;
    for (const char *name : {"VEGETA-D-1-2", "STC-like", "VEGETA-S-2-2",
                             "VEGETA-S-16-2"})
        engines.push_back(*engine_registry.find(name));

    for (const Network &net :
         {resnetFrontNetwork(), bertEncoderNetwork()}) {
        std::cout << "Network " << net.name << " ("
                  << net.layers.size() << " layers, "
                  << net.totalMacs() << " MACs)\n";
        std::cout << "  per-layer patterns:";
        for (const auto &l : net.layers)
            std::cout << " " << l.layerN << ":4";
        std::cout << "\n\n";

        Table table({"engine", "layer-wise cycles",
                     "network-wise cycles", "layer-wise gain"});
        for (const auto &cfg : engines) {
            const auto lw = simulateNetwork(
                net, cfg, NetworkPolicy::LayerWise);
            const auto nw = simulateNetwork(
                net, cfg, NetworkPolicy::NetworkWise);
            table.row()
                .cell(cfg.name)
                .cell(static_cast<unsigned long long>(lw.totalCycles))
                .cell(static_cast<unsigned long long>(nw.totalCycles))
                .cell(static_cast<double>(nw.totalCycles) /
                          static_cast<double>(lw.totalCycles),
                      2);
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Reading: dense engines see no difference (they skip "
                 "nothing); an STC-like engine gains only where 2:4 "
                 "covers the mix; full VEGETA-S engines turn each "
                 "layer's own pattern into runtime, which is why "
                 "layer-wise flexibility matters (Section III-B).\n";
    return 0;
}
